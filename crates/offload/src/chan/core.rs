//! The per-target channel state machine.

use super::adaptive::{AdaptiveDecision, AdaptivePolicy, AdaptiveState};
use super::batch::{self, BatchConfig};
use super::pending::{PendingEntry, PendingTable};
use super::pool::{FramePool, PooledFrame};
use super::queue::CompletionQueue;
use super::recovery::{MissVerdict, RecoveryPolicy, RecoveryState};
use super::ring::SlotRing;
use crate::OffloadError;
use aurora_sim_core::{SimTime, HISTOGRAM_BUCKETS};
use ham::registry::HandlerKey;
use ham::wire::{MsgHeader, MsgKind, HEADER_BYTES};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default credit limit of channels whose slot rings are unbounded
/// (push transports: in-process channels, TCP streams). Bounded
/// channels derive their limit from the slot arrays instead.
pub const DEFAULT_PUSH_CREDITS: usize = 64;

/// A claimed pair of slots plus the sequence number minted for them —
/// what a backend needs to address its transport writes.
#[derive(Clone, Copy, Debug)]
pub struct Reservation {
    /// Sequence number of the offload (also its wire `seq`).
    pub seq: u64,
    /// Receive slot the message goes into.
    pub recv_slot: usize,
    /// Send slot the result will come back in (wire `reply_slot`).
    pub send_slot: usize,
    /// Send attempt (0 = original post, `n` = n-th recovery re-send);
    /// fault injection keys frame-drop decisions on `(seq, attempt)`.
    pub attempt: u32,
}

/// Outcome of [`ChannelCore::try_reserve`].
#[derive(Debug)]
pub enum Reserve {
    /// Slots claimed; post the frame.
    Reserved(Reservation),
    /// No slot free right now — drain completions and retry.
    Full,
    /// The channel is shut down; nothing may be posted.
    Shutdown,
    /// The target was evicted; the error says why it is gone.
    Lost(OffloadError),
}

/// Outcome of [`ChannelCore::stage`] (batching enabled only).
#[derive(Debug)]
pub enum Stage {
    /// The message joined the staged envelope under its own seq. When
    /// `flush` is set a watermark tripped — send the envelope now.
    Staged {
        /// Seq the member's result will be claimable under.
        seq: u64,
        /// A count/byte watermark tripped: flush before returning.
        flush: bool,
        /// The flush was forced by the `slo_micros` age bound rather
        /// than a count/byte watermark (the engine surfaces these as
        /// SLO-flush metrics and health events).
        slo: bool,
    },
    /// The message does not fit next to what is already staged — flush,
    /// then stage again.
    FlushFirst,
    /// The message alone overflows an envelope — flush what is staged,
    /// then post it as a plain frame.
    TooBig,
    /// The channel is shut down.
    Shutdown,
    /// The target was evicted.
    Lost(OffloadError),
}

/// Outcome of [`ChannelCore::take_flush`].
#[derive(Debug)]
pub enum FlushPrep {
    /// Nothing staged.
    Empty,
    /// Slots exhausted — sweep completions and retry.
    Full,
    /// An envelope frame ready to hand to the transport.
    Ready(FlushFrame),
}

/// A batch envelope claimed out of the accumulator, with its slot
/// reservation, ready for [`crate::CommBackend::send_frame`].
#[derive(Debug)]
pub struct FlushFrame {
    /// Slot pair + carrier seq for the transport write.
    pub res: Reservation,
    /// The carrier header (also encoded at `frame[..32]`).
    pub header: MsgHeader,
    /// Full wire bytes: carrier header ‖ count ‖ sub-messages.
    pub frame: PooledFrame,
    /// Number of coalesced messages.
    pub msgs: usize,
    /// When the first member was staged — the flush-latency metric
    /// measures from here to the envelope reaching the transport.
    pub posted_at: SimTime,
}

/// One in-flight frame the transport must re-send after a session
/// resume: its wire image survived in the replay buffer and the
/// device-side watermark proves the target never executed it.
#[derive(Debug)]
pub struct ReplayFrame {
    /// Wire seq — unchanged; the pending entry stays keyed by it and
    /// the eventual result deposits under it as usual.
    pub seq: u64,
    /// The wire header as originally sent.
    pub header: MsgHeader,
    /// Full wire bytes (header ‖ payload), cloned from the replay
    /// buffer (replays are cold).
    pub frame: Vec<u8>,
    /// Which send attempt this is (1 = first replay).
    pub attempt: u32,
}

/// Outcome of [`ChannelCore::resume`]: which in-flight frames the
/// transport must re-send, and how many offloads were conservatively
/// failed because the target may already have executed them.
#[derive(Debug)]
pub struct ResumeReport {
    /// Frames to re-send in seq order; their offloads stay pending and
    /// complete through the normal deposit path.
    pub replay: Vec<ReplayFrame>,
    /// Offloads failed as possibly-executed (their seq is at or below
    /// the device watermark, or no wire image was stored). Batch
    /// carriers count every member.
    pub lost: usize,
}

/// The staged-but-unflushed envelope of one channel. `frame` is laid
/// out as `[32 zero bytes][4 zero bytes][subs…]` and patched into a
/// finished envelope at flush time.
struct BatchAccum {
    frame: Option<PooledFrame>,
    seqs: Vec<u64>,
    first_offload: u64,
    first_posted: SimTime,
}

impl BatchAccum {
    fn new() -> Self {
        Self {
            frame: None,
            seqs: Vec::new(),
            first_offload: 0,
            first_posted: SimTime::ZERO,
        }
    }
}

/// Everything guarded by the channel lock.
struct ChanState {
    recv: SlotRing,
    send: SlotRing,
    pending: PendingTable,
    completed: CompletionQueue,
    seq: u64,
    shutdown: bool,
    /// `Some(why)` once the target was evicted: every in-flight offload
    /// was failed and new reservations are refused with this error.
    evicted: Option<OffloadError>,
    /// `Some(why)` while the transport is disconnected but a resume is
    /// still possible: in-flight offloads stay pending, new reservations
    /// park with [`Reserve::Full`] until [`ChannelCore::resume`] or
    /// [`ChannelCore::evict`] settles the session.
    degraded: Option<OffloadError>,
    /// Armed timeout/retry policy plus stored frames (fault-tolerant
    /// channels only; `None` keeps the historical always-wait behavior).
    recovery: Option<RecoveryState>,
    /// Staged messages awaiting flush (batching enabled only).
    accum: BatchAccum,
    /// Member seqs of every in-flight batch, keyed by carrier seq.
    batches: HashMap<u64, Vec<u64>>,
    /// Recycled member-seq vectors (keeps settling allocation-free).
    seq_pool: Vec<Vec<u64>>,
    /// Seqs failed *before their frame reached the transport* (staged
    /// messages at eviction, members of an envelope whose send failed).
    /// The scheduler distinguishes these — safe to resubmit elsewhere —
    /// from offloads the target may already have executed.
    unsent: HashSet<u64>,
    /// The adaptive watermark controller (`BatchConfig::adaptive` only).
    adaptive: Option<AdaptiveState>,
}

/// The host-side state of one target's channel: slot rings, the
/// in-flight table and the completion queue under a single lock, plus
/// the message-size limit the engine enforces before reserving.
///
/// Backends own one per target and expose it through
/// [`crate::CommBackend::channel`]; all transitions are driven by
/// [`crate::chan::engine`]. The state machine per offload:
///
/// ```text
/// try_reserve ──► pending ──(flags ready / deposit)──► completed ──take──► future
///      │             │                                       ▲
///      │             ├─(deadline, budget left)─ retry ───────┤ (same seq/slots)
///      │             ├─(deadline, budget gone)─ Err(Timeout)─┤
///      │             └─(transport dead)─ evict: Err(lost) ───┘ (errors park here too)
///      └── cancel (send failed: slots freed, seq retired)
/// ```
///
/// With batching enabled ([`ChannelCore::with_batching`]) offload posts
/// take a staging detour: `stage` mints the seq and appends to an
/// envelope, `take_flush` claims **one** slot pair for the whole
/// envelope (the pending entry is keyed by the *carrier* seq — the last
/// member's), and settling a carrier fans its result parts out to every
/// member seq.
///
/// The retry/timeout edges exist only when a [`RecoveryPolicy`] is
/// armed; eviction ([`ChannelCore::evict`]) fails every in-flight
/// offload at once and latches the channel so later reservations refuse
/// with the eviction error ([`Reserve::Lost`]).
pub struct ChannelCore {
    state: Mutex<ChanState>,
    max_msg_bytes: usize,
    pool: Arc<FramePool>,
    batch: BatchConfig,
    /// Scheduler admission limit override ([`Self::with_credit_limit`]);
    /// `None` derives the limit from the slot rings.
    credits: Option<usize>,
    /// Count of settled [`Self::resume`] transitions — a lock-free
    /// "session healed" epoch. Pool probers watch it to clear liveness
    /// penalties the moment a transport reconnects, without waiting for
    /// the next probe round trip.
    resumes: AtomicU64,
}

impl ChannelCore {
    fn fresh_state(recv: SlotRing, send: SlotRing) -> ChanState {
        ChanState {
            recv,
            send,
            pending: PendingTable::new(),
            completed: CompletionQueue::new(),
            seq: 0,
            shutdown: false,
            evicted: None,
            degraded: None,
            recovery: None,
            accum: BatchAccum::new(),
            batches: HashMap::new(),
            seq_pool: Vec::new(),
            unsent: HashSet::new(),
            adaptive: None,
        }
    }

    /// A channel over real slot arrays: `recv_slots` round-robin receive
    /// slots, `send_slots` first-free send slots, payloads capped at
    /// `max_msg_bytes`.
    pub fn bounded(recv_slots: usize, send_slots: usize, max_msg_bytes: usize) -> Self {
        Self {
            state: Mutex::new(Self::fresh_state(
                SlotRing::round_robin(recv_slots),
                SlotRing::first_free(send_slots),
            )),
            max_msg_bytes,
            pool: FramePool::new(),
            batch: BatchConfig::default(),
            credits: None,
            resumes: AtomicU64::new(0),
        }
    }

    /// A channel for transports without slot arrays (in-process
    /// channels, TCP streams): reservations never refuse and payloads
    /// are unlimited.
    pub fn unbounded() -> Self {
        Self {
            state: Mutex::new(Self::fresh_state(
                SlotRing::unbounded(),
                SlotRing::unbounded(),
            )),
            max_msg_bytes: usize::MAX,
            pool: FramePool::new(),
            batch: BatchConfig::default(),
            credits: None,
            resumes: AtomicU64::new(0),
        }
    }

    /// Arm a timeout/retry policy on this channel (builder style — used
    /// by fault-tolerant backend constructors). Without this, in-flight
    /// offloads wait forever, exactly as before.
    pub fn with_recovery(self, policy: RecoveryPolicy) -> Self {
        self.state.lock().recovery = Some(RecoveryState::new(policy));
        self
    }

    /// Set the batching watermarks (builder style). The default config
    /// (`max_msgs == 1`) keeps batching off and the wire traffic
    /// byte-identical to the unbatched protocol. `batch.adaptive` arms
    /// the [`super::adaptive`] controller with the config as its
    /// ceiling.
    pub fn with_batching(mut self, batch: BatchConfig) -> Self {
        self.batch = batch;
        self.state.lock().adaptive = (batch.adaptive && batch.enabled())
            .then(|| AdaptiveState::new(AdaptivePolicy::from_batch(&batch)));
        self
    }

    /// The armed batching watermarks.
    pub fn batching(&self) -> BatchConfig {
        self.batch
    }

    /// Whether offload posts go through the staging path. Lock-free —
    /// the disabled check on the default post path costs nothing.
    pub fn batch_enabled(&self) -> bool {
        self.batch.enabled()
    }

    /// This channel's frame-buffer pool (shared with the runtime's
    /// encode path so message payloads are built in recycled buffers).
    pub fn pool(&self) -> &Arc<FramePool> {
        &self.pool
    }

    /// Largest payload the transport's slots can carry.
    pub fn max_msg_bytes(&self) -> usize {
        self.max_msg_bytes
    }

    /// Override the scheduler's per-target credit limit (builder
    /// style). Without it, bounded channels allow as many in-flight
    /// *messages* as their slot rings can carry frames (times the batch
    /// watermark when batching is on) and unbounded channels default to
    /// [`DEFAULT_PUSH_CREDITS`].
    pub fn with_credit_limit(mut self, credits: usize) -> Self {
        self.credits = Some(credits.max(1));
        self
    }

    /// The scheduler's admission limit for this channel: how many
    /// in-flight messages ([`Self::in_flight`]) a target pool tolerates
    /// before [`crate::sched::TargetPool::submit`] stops placing work
    /// here. Derived from the slot rings unless overridden.
    pub fn credit_limit(&self) -> usize {
        if let Some(c) = self.credits {
            return c;
        }
        let st = self.state.lock();
        let base = match (st.recv.capacity(), st.send.capacity()) {
            (Some(r), Some(s)) => r.min(s),
            _ => DEFAULT_PUSH_CREDITS,
        };
        base * self.batch.max_msgs.max(1)
    }

    /// Whether the scheduler may place another message here right now.
    pub fn has_credit(&self) -> bool {
        self.in_flight() < self.credit_limit()
    }

    /// Claim a slot pair and mint a sequence number. Control frames
    /// (`control = true`) may be posted into a shut-down channel — that
    /// is how shutdown itself is delivered. `bytes` is the wire size the
    /// message will occupy (header + payload), fed into
    /// [`Self::bytes_in_flight`].
    pub fn try_reserve(
        &self,
        control: bool,
        offload: u64,
        posted_at: SimTime,
        bytes: u64,
    ) -> Reserve {
        let mut st = self.state.lock();
        if st.shutdown && !control {
            return Reserve::Shutdown;
        }
        // An evicted target is gone for control frames too — there is
        // nobody left to deliver them to.
        if let Some(err) = &st.evicted {
            return Reserve::Lost(err.clone());
        }
        // A degraded channel holds new work back without failing it:
        // the engine's backoff loop retries `Full` until the transport
        // resumes (posts proceed) or gives up and evicts (posts fail).
        // Control frames slip through — shutdown must stay deliverable.
        if st.degraded.is_some() && !control {
            return Reserve::Full;
        }
        let Some(recv_slot) = st.recv.acquire() else {
            return Reserve::Full;
        };
        let Some(send_slot) = st.send.acquire() else {
            // Rewind, don't release: the rotation must re-offer this
            // recv slot, since the target never saw it claimed.
            st.recv.unacquire(recv_slot);
            return Reserve::Full;
        };
        let seq = st.seq;
        st.seq += 1;
        st.pending.insert(
            seq,
            PendingEntry {
                recv_slot,
                send_slot,
                offload,
                posted_at,
                bytes,
            },
        );
        Reserve::Reserved(Reservation {
            seq,
            recv_slot,
            send_slot,
            attempt: 0,
        })
    }

    /// Stage one offload message into the batch envelope, minting its
    /// seq. Only meaningful with batching enabled; no slots are claimed
    /// until [`Self::take_flush`].
    pub fn stage(
        &self,
        key: HandlerKey,
        payload: &[u8],
        offload: u64,
        posted_at: SimTime,
    ) -> Stage {
        let cap = self.batch.effective_bytes(self.max_msg_bytes);
        let mut st = self.state.lock();
        if st.shutdown {
            return Stage::Shutdown;
        }
        if let Some(err) = &st.evicted {
            return Stage::Lost(err.clone());
        }
        let need = HEADER_BYTES + payload.len();
        if batch::COUNT_BYTES.saturating_add(need) > cap {
            return Stage::TooBig;
        }
        if !st.accum.seqs.is_empty() {
            let staged = st
                .accum
                .frame
                .as_ref()
                .map_or(0, |f| f.len() - HEADER_BYTES);
            if staged.saturating_add(need) > cap {
                return Stage::FlushFirst;
            }
        }
        let seq = st.seq;
        st.seq += 1;
        if st.accum.seqs.is_empty() {
            st.accum.first_offload = offload;
            st.accum.first_posted = posted_at;
        }
        if st.accum.frame.is_none() {
            let mut f = self.pool.checkout();
            // Placeholder for the carrier header + count, patched at
            // flush time.
            f.resize(HEADER_BYTES + batch::COUNT_BYTES, 0);
            st.accum.frame = Some(f);
        }
        let sub = MsgHeader {
            handler_key: key,
            payload_len: payload.len() as u32,
            kind: MsgKind::Offload,
            reply_slot: 0,
            corr: offload,
            seq,
        };
        // The *effective* watermarks: the adaptive controller's current
        // values when armed, the static config otherwise. Adaptation
        // only ever trips flushes earlier — the fit checks above always
        // use the static cap, so no envelope the static config would
        // reject is ever admitted.
        let (wm_msgs, wm_bytes) = match st.adaptive.as_ref() {
            Some(a) => a.effective(cap),
            None => (self.batch.max_msgs, cap),
        };
        let frame = st.accum.frame.as_mut().expect("staged frame");
        batch::append_sub(frame, &sub, payload);
        let bytes_full = frame.len() - HEADER_BYTES >= wm_bytes;
        st.accum.seqs.push(seq);
        let count_full = st.accum.seqs.len() >= wm_msgs;
        // The SLO age bound: staging into an accumulator whose first
        // member is older than `slo_micros` closes the envelope now.
        let aged = self.slo_ps() > 0
            && posted_at.saturating_sub(st.accum.first_posted) >= SimTime(self.slo_ps());
        let slo = aged && !count_full && !bytes_full;
        if slo {
            if let Some(a) = st.adaptive.as_mut() {
                a.note_slo();
            }
        }
        Stage::Staged {
            seq,
            flush: count_full || bytes_full || aged,
            slo,
        }
    }

    /// `slo_micros` in picoseconds (0 = unbounded). Lock-free.
    fn slo_ps(&self) -> u64 {
        self.batch.slo_micros.saturating_mul(1_000_000)
    }

    /// Virtual-time SLO check for the engine's flag sweep: `true` when
    /// a staged envelope's first member is older than
    /// `BatchConfig::slo_micros`. The disabled path (the default) is a
    /// lock-free field compare, so sweeping channels without the knob
    /// costs nothing.
    pub fn slo_flush_due(&self, now: SimTime) -> bool {
        if self.slo_ps() == 0 || !self.batch.enabled() {
            return false;
        }
        let st = self.state.lock();
        !st.accum.seqs.is_empty()
            && st.degraded.is_none()
            && now.saturating_sub(st.accum.first_posted) >= SimTime(self.slo_ps())
    }

    /// Record an SLO-forced flush with the controller (the engine calls
    /// this when [`Self::slo_flush_due`] fires; stage-time trips are
    /// recorded internally).
    pub fn note_slo_trip(&self) {
        if let Some(a) = self.state.lock().adaptive.as_mut() {
            a.note_slo();
        }
    }

    /// Account a successful envelope flush of `msgs` members with the
    /// adaptive controller and, when its tick window is full, run one
    /// controller tick against the cumulative flush-latency histogram
    /// (fetched lazily — the common non-tick flush never touches it).
    /// Returns a non-`Hold` decision for the engine to surface as
    /// metrics/health events; `None` when the controller is off, the
    /// window is still filling, or the tick held.
    pub fn adaptive_tick(
        &self,
        msgs: usize,
        flush_hist: impl FnOnce() -> [u64; HISTOGRAM_BUCKETS],
    ) -> Option<AdaptiveDecision> {
        let mut st = self.state.lock();
        let a = st.adaptive.as_mut()?;
        if !a.note_flush(msgs) {
            return None;
        }
        let hist = flush_hist();
        let d = a.tick(&hist);
        (d.decision != super::adaptive::Decision::Hold).then_some(d)
    }

    /// The controller's current effective message watermark (the static
    /// `max_msgs` when adaptation is off) — observability and tests.
    pub fn effective_watermark(&self) -> usize {
        self.state
            .lock()
            .adaptive
            .as_ref()
            .map_or(self.batch.max_msgs, |a| a.watermark())
    }

    /// Claim the staged envelope for sending: one slot pair for the
    /// whole batch, the pending entry keyed by the carrier seq (the last
    /// member's). Works during shutdown — staged messages predate it and
    /// must still drain.
    pub fn take_flush(&self) -> FlushPrep {
        let mut st = self.state.lock();
        if st.accum.seqs.is_empty() {
            // Eviction clears the accumulator, so an evicted channel
            // always lands here.
            return FlushPrep::Empty;
        }
        // Degraded: the envelope stays staged until the session resumes
        // (it flushes then) or the channel is evicted (it fails then).
        if st.degraded.is_some() {
            return FlushPrep::Full;
        }
        let Some(recv_slot) = st.recv.acquire() else {
            return FlushPrep::Full;
        };
        let Some(send_slot) = st.send.acquire() else {
            st.recv.unacquire(recv_slot);
            return FlushPrep::Full;
        };
        let mut frame = st.accum.frame.take().expect("staged frame");
        let recycled = st.seq_pool.pop().unwrap_or_default();
        let seqs = core::mem::replace(&mut st.accum.seqs, recycled);
        let (first_offload, first_posted) = (st.accum.first_offload, st.accum.first_posted);
        let carrier_seq = *seqs.last().expect("non-empty batch");
        let msgs = seqs.len();
        let header = batch::carrier_header(
            carrier_seq,
            frame.len() - HEADER_BYTES,
            send_slot as u16,
            first_offload,
        );
        batch::patch_envelope(&mut frame, &header, msgs as u32);
        st.pending.insert(
            carrier_seq,
            PendingEntry {
                recv_slot,
                send_slot,
                offload: first_offload,
                posted_at: first_posted,
                bytes: frame.len() as u64,
            },
        );
        st.batches.insert(carrier_seq, seqs);
        FlushPrep::Ready(FlushFrame {
            res: Reservation {
                seq: carrier_seq,
                recv_slot,
                send_slot,
                attempt: 0,
            },
            header,
            frame,
            msgs,
            posted_at: first_posted,
        })
    }

    /// Undo a flushed batch whose envelope never made it onto the
    /// transport: slots return, every member fails with `err`.
    pub fn fail_batch(&self, carrier: u64, err: OffloadError) {
        let mut st = self.state.lock();
        if let Some(e) = st.pending.remove(carrier) {
            st.recv.release(e.recv_slot);
            st.send.release(e.send_slot);
        }
        if let Some(r) = st.recovery.as_mut() {
            r.forget(carrier);
        }
        if let Some(members) = st.batches.remove(&carrier) {
            for m in &members {
                // The envelope never made it onto the transport, so no
                // member can have executed — eligible for resubmission.
                st.unsent.insert(*m);
                st.completed.push(*m, Err(err.clone()));
            }
            Self::recycle_seqs(&mut st, members);
        }
    }

    fn recycle_seqs(st: &mut ChanState, mut seqs: Vec<u64>) {
        seqs.clear();
        if st.seq_pool.len() < 8 {
            st.seq_pool.push(seqs);
        }
    }

    /// Park `result` for `seq` — fanning a batch carrier's combined
    /// result out to every member seq. Runs under the channel lock; the
    /// happy path copies each part into a pooled buffer and allocates
    /// nothing once pool and maps are warm.
    fn settle_locked(
        &self,
        st: &mut ChanState,
        seq: u64,
        result: Result<PooledFrame, OffloadError>,
    ) {
        let Some(members) = st.batches.remove(&seq) else {
            st.completed.push(seq, result);
            return;
        };
        match result {
            Ok(frame) => {
                match crate::target_loop::unframe_result_ref(&frame) {
                    Ok(body) => self.settle_batch_body(st, &members, body),
                    Err(msg) => {
                        // The target rejected the whole envelope.
                        for m in &members {
                            st.completed
                                .push(*m, Err(OffloadError::Backend(msg.clone())));
                        }
                    }
                }
            }
            Err(e) => {
                for m in &members {
                    st.completed.push(*m, Err(e.clone()));
                }
            }
        }
        Self::recycle_seqs(st, members);
    }

    /// Walk a batch result body against the member list in lockstep
    /// (the target answers in member order) and park each part.
    fn settle_batch_body(&self, st: &mut ChanState, members: &[u64], body: &[u8]) {
        let mut parts = match batch::ResultPartIter::new(body) {
            Ok(it) => it,
            Err(msg) => {
                for m in members {
                    st.completed
                        .push(*m, Err(OffloadError::Backend(msg.clone())));
                }
                return;
            }
        };
        let mut next: Option<(u64, &[u8])> = None;
        let mut bad: Option<String> = None;
        for &m in members {
            if bad.is_none() && next.is_none() {
                match parts.next() {
                    Some(Ok(p)) => next = Some(p),
                    Some(Err(e)) => bad = Some(e),
                    None => {}
                }
            }
            match next {
                Some((s, part)) if s == m => {
                    let mut out = self.pool.checkout();
                    out.extend_from_slice(part);
                    st.completed.push(m, Ok(out));
                    next = None;
                }
                _ => {
                    let msg = bad
                        .clone()
                        .unwrap_or_else(|| format!("batch result missing part for seq {m}"));
                    st.completed.push(m, Err(OffloadError::Backend(msg)));
                }
            }
        }
    }

    /// Retire a reservation whose frame never made it onto the
    /// transport: slots return to the rings, the seq is abandoned.
    pub fn cancel(&self, seq: u64) {
        let mut st = self.state.lock();
        if let Some(e) = st.pending.remove(seq) {
            st.recv.release(e.recv_slot);
            st.send.release(e.send_slot);
        }
        if let Some(r) = st.recovery.as_mut() {
            r.forget(seq);
        }
    }

    /// Remove an in-flight entry for completion. Returns `None` if
    /// another thread already claimed it (the completion race is
    /// resolved here, under the lock).
    pub fn take_pending(&self, seq: u64) -> Option<PendingEntry> {
        let mut st = self.state.lock();
        let e = st.pending.remove(seq);
        if e.is_some() {
            if let Some(r) = st.recovery.as_mut() {
                r.forget(seq);
            }
        }
        e
    }

    /// Record a successfully-sent frame (full wire bytes) for possible
    /// recovery re-sends. Control frames are not retryable; without an
    /// armed [`RecoveryPolicy`] the buffer just returns to the pool.
    pub fn note_sent(&self, seq: u64, header: &MsgHeader, frame: PooledFrame) {
        if !matches!(header.kind, MsgKind::Offload | MsgKind::Batch) {
            return;
        }
        if let Some(r) = self.state.lock().recovery.as_mut() {
            r.store(seq, *header, frame);
        }
    }

    /// Count one fruitless flag sweep against `seq` and apply the armed
    /// deadline policy. [`MissVerdict::Keep`] when no policy is armed.
    pub fn note_miss(&self, seq: u64) -> MissVerdict {
        match self.state.lock().recovery.as_mut() {
            Some(r) => r.miss(seq),
            None => MissVerdict::Keep,
        }
    }

    /// Evict the target: fail every in-flight offload (batch members and
    /// staged-but-unflushed messages included) with `err`, free their
    /// slots, refuse all future reservations with `err`. Returns the
    /// number of offloads failed, or `None` if already evicted (the
    /// first caller runs the eviction; later callers see a no-op).
    pub fn evict(&self, err: OffloadError) -> Option<usize> {
        let mut st = self.state.lock();
        if st.evicted.is_some() {
            return None;
        }
        st.evicted = Some(err.clone());
        st.degraded = None;
        if let Some(r) = st.recovery.as_mut() {
            r.clear();
        }
        let seqs: Vec<u64> = st.pending.snapshot().into_iter().map(|(s, _)| s).collect();
        let mut failed = 0;
        for seq in seqs {
            if let Some(e) = st.pending.remove(seq) {
                st.recv.release(e.recv_slot);
                st.send.release(e.send_slot);
                failed += st.batches.get(&seq).map_or(1, Vec::len);
                self.settle_locked(&mut st, seq, Err(err.clone()));
            }
        }
        // Staged messages never reached the wire; fail them too —
        // marked unsent so a scheduler may resubmit them elsewhere.
        let staged = core::mem::take(&mut st.accum.seqs);
        for m in &staged {
            st.unsent.insert(*m);
            st.completed.push(*m, Err(err.clone()));
            failed += 1;
        }
        Self::recycle_seqs(&mut st, staged);
        st.accum.frame = None;
        Some(failed)
    }

    /// Why the target was evicted, if it was.
    pub fn eviction(&self) -> Option<OffloadError> {
        self.state.lock().evicted.clone()
    }

    /// Mark the transport disconnected *without* failing anything:
    /// in-flight offloads stay pending (their wire images remain in the
    /// replay buffer), new posts park on [`Reserve::Full`] until the
    /// session settles, and staged messages keep accumulating. The
    /// session settles through [`Self::resume`] (reconnected) or
    /// [`Self::evict`] (reconnect budget exhausted). Returns the number
    /// of in-flight messages at the moment of degradation; `None` if
    /// already degraded or evicted (the first caller owns the
    /// transition).
    pub fn degrade(&self, err: OffloadError) -> Option<usize> {
        let mut st = self.state.lock();
        if st.evicted.is_some() || st.degraded.is_some() {
            return None;
        }
        st.degraded = Some(err);
        let extra: usize = st.batches.values().map(|m| m.len() - 1).sum();
        Some(st.pending.len() + extra + st.accum.seqs.len())
    }

    /// Why the channel is degraded, if it is.
    pub fn degradation(&self) -> Option<OffloadError> {
        self.state.lock().degraded.clone()
    }

    /// True while the channel is disconnected-but-resumable.
    pub fn is_degraded(&self) -> bool {
        self.state.lock().degraded.is_some()
    }

    /// Settle a degraded session against the device-side dedup
    /// `watermark` announced on reconnect (`None` = the target executed
    /// nothing yet). Exactly-once split, sound because the device
    /// watermark is the *max* executed seq and only ever advances:
    ///
    /// * `seq > watermark` with a stored wire image — provably never
    ///   executed: stays pending and is returned for replay;
    /// * anything else — possibly executed (or not replayable): failed
    ///   with `err`, batch members fanned out, slots released.
    ///
    /// Returns `None` if the channel was not degraded (racing eviction
    /// or a double resume). The staged accumulator is untouched — it
    /// never reached the wire and flushes normally after resume.
    pub fn resume(&self, watermark: Option<u64>, err: OffloadError) -> Option<ResumeReport> {
        let mut st = self.state.lock();
        st.degraded.take()?;
        let seqs: Vec<u64> = st.pending.snapshot().into_iter().map(|(s, _)| s).collect();
        let mut replay = Vec::new();
        let mut lost = 0;
        for seq in seqs {
            let provably_unexecuted = watermark.is_none_or(|w| seq > w);
            let stored = if provably_unexecuted {
                st.recovery.as_mut().and_then(|r| r.note_replay(seq))
            } else {
                None
            };
            match stored {
                Some((header, frame, attempt)) => replay.push(ReplayFrame {
                    seq,
                    header,
                    frame,
                    attempt,
                }),
                None => {
                    if let Some(e) = st.pending.remove(seq) {
                        st.recv.release(e.recv_slot);
                        st.send.release(e.send_slot);
                        if let Some(r) = st.recovery.as_mut() {
                            r.forget(seq);
                        }
                        lost += st.batches.get(&seq).map_or(1, Vec::len);
                        self.settle_locked(&mut st, seq, Err(err.clone()));
                    }
                }
            }
        }
        self.resumes.fetch_add(1, Ordering::Release);
        Some(ResumeReport { replay, lost })
    }

    /// How many times this channel's session has been resumed after a
    /// degradation. Lock-free; monotonic. A change since the last read
    /// is a "healed" notification — the pool prober uses it to clear a
    /// target's liveness penalty without a probe round trip, and
    /// [`crate::sched::TargetPool::pick`] uses it to restart its
    /// all-degraded wait budget (a resume is progress).
    pub fn resumes(&self) -> u64 {
        self.resumes.load(Ordering::Acquire)
    }

    /// The reconnect/retry budget of the armed [`RecoveryPolicy`]
    /// (`max_retries`), or `None` when no recovery is armed. Schedulers
    /// use it to bound how long a degraded target is worth waiting for.
    pub fn recovery_budget(&self) -> Option<u32> {
        self.state
            .lock()
            .recovery
            .as_ref()
            .map(|r| r.policy().max_retries)
    }

    /// Snapshot of all in-flight offloads, ordered by seq.
    pub fn pending_snapshot(&self) -> Vec<(u64, PendingEntry)> {
        self.state.lock().pending.snapshot()
    }

    /// [`Self::pending_snapshot`] into a caller-provided scratch vector
    /// — the allocation-free variant the engine's sweep loop uses.
    pub fn pending_into(&self, out: &mut Vec<(u64, PendingEntry)>) {
        self.state.lock().pending.snapshot_into(out);
    }

    /// Claim (and clear) the unsent marker for a failed seq. `true`
    /// means the offload's frame never reached the transport — the
    /// target cannot have executed it, so a scheduler may safely
    /// resubmit it to a survivor. One-shot, like completions.
    pub fn take_unsent(&self, seq: u64) -> bool {
        self.state.lock().unsent.remove(&seq)
    }

    /// Number of staged-but-unflushed messages in the batch accumulator.
    pub fn staged_len(&self) -> usize {
        self.state.lock().accum.seqs.len()
    }

    /// Reclaim the last `n` staged members from the batch accumulator.
    /// They are provably unsent — no slot was claimed and no frame
    /// reached the transport — so a scheduler may migrate them to
    /// another target. Each reclaimed seq is marked unsent and failed
    /// with [`OffloadError::Migrated`]; the earlier members stay staged
    /// in a correctly re-enveloped frame. Returns how many were taken.
    pub fn take_staged_tail(&self, n: usize) -> usize {
        let mut st = self.state.lock();
        if n == 0 || st.accum.seqs.is_empty() {
            return 0;
        }
        let keep = st.accum.seqs.len().saturating_sub(n);
        let tail = st.accum.seqs.split_off(keep);
        if keep == 0 {
            st.accum.frame = None;
        } else if let Some(frame) = st.accum.frame.as_mut() {
            // The accumulator only ever holds envelopes this channel
            // built, so re-walking the kept prefix cannot fail.
            batch::truncate_members(frame, keep).expect("staged envelope is well-formed");
        }
        for m in &tail {
            st.unsent.insert(*m);
            st.completed.push(*m, Err(OffloadError::Migrated));
        }
        let taken = tail.len();
        Self::recycle_seqs(&mut st, tail);
        taken
    }

    /// Number of in-flight *messages*: pending frames count their batch
    /// members, plus whatever is staged awaiting flush.
    pub fn in_flight(&self) -> usize {
        let st = self.state.lock();
        let extra: usize = st.batches.values().map(|m| m.len() - 1).sum();
        st.pending.len() + extra + st.accum.seqs.len()
    }

    /// Wire bytes currently committed to this target: every pending
    /// frame plus the staged (unflushed) accumulator. The scheduler's
    /// `WeightedByLatency` policy adds this to its load term so a
    /// target holding a few dense batches does not look idler than one
    /// holding many small probes.
    pub fn bytes_in_flight(&self) -> u64 {
        let st = self.state.lock();
        st.pending.bytes() + st.accum.frame.as_ref().map_or(0, |f| f.len() as u64)
    }

    /// Finish an offload whose entry was already removed with
    /// [`Self::take_pending`]: free its slots and park the result for
    /// its future (fanned out to members for a batch carrier).
    pub fn finish(&self, seq: u64, entry: &PendingEntry, result: Result<Vec<u8>, OffloadError>) {
        let mut st = self.state.lock();
        st.recv.release(entry.recv_slot);
        st.send.release(entry.send_slot);
        let result = result.map(|v| self.pool.adopt(v));
        self.settle_locked(&mut st, seq, result);
    }

    /// Push-transport completion path: a receiver thread deposits a
    /// finished result frame. Unknown sequence numbers are dropped
    /// (late frames racing a shutdown).
    pub fn deposit(&self, seq: u64, frame: Vec<u8>) {
        self.deposit_frame(seq, self.pool.adopt(frame));
    }

    /// [`Self::deposit`] with a pooled buffer — the allocation-free
    /// variant.
    pub fn deposit_frame(&self, seq: u64, frame: PooledFrame) {
        let mut st = self.state.lock();
        if let Some(e) = st.pending.remove(seq) {
            st.recv.release(e.recv_slot);
            st.send.release(e.send_slot);
            if let Some(r) = st.recovery.as_mut() {
                r.forget(seq);
            }
            self.settle_locked(&mut st, seq, Ok(frame));
        }
    }

    /// Claim a parked completion.
    pub fn take_completed(&self, seq: u64) -> Option<Result<PooledFrame, OffloadError>> {
        self.state.lock().completed.take(seq)
    }

    /// Mark the channel shut down; returns the *previous* state so the
    /// first caller (and only the first) runs the shutdown protocol.
    pub fn begin_shutdown(&self) -> bool {
        core::mem::replace(&mut self.state.lock().shutdown, true)
    }

    /// True once [`Self::begin_shutdown`] has run.
    pub fn is_shutdown(&self) -> bool {
        self.state.lock().shutdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target_loop::frame_result;
    use proptest::prelude::*;

    fn reserve(c: &ChannelCore) -> Reserve {
        c.try_reserve(false, 0, SimTime::ZERO, 0)
    }

    #[test]
    fn reserve_post_complete_take() {
        let c = ChannelCore::bounded(2, 2, 4096);
        let Reserve::Reserved(r) = reserve(&c) else {
            panic!("reserve failed");
        };
        assert_eq!((r.seq, r.recv_slot, r.send_slot), (0, 0, 0));
        let e = c.take_pending(r.seq).unwrap();
        c.finish(r.seq, &e, Ok(b"done".to_vec()));
        assert_eq!(
            c.take_completed(r.seq).unwrap().unwrap().as_slice(),
            b"done"
        );
        assert!(c.take_completed(r.seq).is_none(), "claims are one-shot");
    }

    #[test]
    fn full_rings_refuse_until_freed() {
        let c = ChannelCore::bounded(1, 1, 4096);
        let Reserve::Reserved(r) = reserve(&c) else {
            panic!("reserve failed");
        };
        assert!(matches!(reserve(&c), Reserve::Full));
        c.deposit(r.seq, vec![]);
        assert!(matches!(reserve(&c), Reserve::Reserved(_)));
    }

    #[test]
    fn cancel_frees_slots_and_retires_seq() {
        let c = ChannelCore::bounded(1, 1, 4096);
        let Reserve::Reserved(r) = reserve(&c) else {
            panic!("reserve failed");
        };
        c.cancel(r.seq);
        let Reserve::Reserved(r2) = reserve(&c) else {
            panic!("slots not freed");
        };
        assert_eq!(r2.seq, 1, "sequence numbers are never reused");
        assert!(c.take_completed(r.seq).is_none());
    }

    #[test]
    fn shutdown_blocks_posts_but_not_control() {
        let c = ChannelCore::bounded(2, 2, 4096);
        assert!(!c.begin_shutdown());
        assert!(c.begin_shutdown(), "second caller sees it already down");
        assert!(matches!(reserve(&c), Reserve::Shutdown));
        assert!(matches!(
            c.try_reserve(true, 0, SimTime::ZERO, 0),
            Reserve::Reserved(_)
        ));
    }

    #[test]
    fn deposit_for_unknown_seq_is_dropped() {
        let c = ChannelCore::unbounded();
        c.deposit(7, b"late".to_vec());
        assert!(c.take_completed(7).is_none());
    }

    #[test]
    fn evict_fails_pending_frees_slots_and_latches() {
        use crate::types::NodeId;
        let c = ChannelCore::bounded(2, 2, 4096);
        let Reserve::Reserved(r1) = reserve(&c) else {
            panic!("reserve failed");
        };
        let Reserve::Reserved(r2) = reserve(&c) else {
            panic!("reserve failed");
        };
        let lost = OffloadError::TargetLost(NodeId(1));
        assert_eq!(c.evict(lost.clone()), Some(2));
        assert_eq!(c.evict(lost.clone()), None, "second eviction is a no-op");
        assert_eq!(c.in_flight(), 0, "no leaked pending entries");
        for seq in [r1.seq, r2.seq] {
            assert_eq!(c.take_completed(seq).unwrap().unwrap_err(), lost);
        }
        // Later reservations refuse with the eviction error — even
        // control frames: the target is gone.
        assert!(matches!(
            reserve(&c),
            Reserve::Lost(OffloadError::TargetLost(_))
        ));
        assert!(matches!(
            c.try_reserve(true, 0, SimTime::ZERO, 0),
            Reserve::Lost(_)
        ));
        assert_eq!(c.eviction(), Some(lost));
        // Late deposits for retired seqs are dropped.
        c.deposit(r1.seq, b"late".to_vec());
        assert!(c.take_completed(r1.seq).is_none());
    }

    #[test]
    fn staged_tail_migrates_out_of_the_accumulator() {
        let c = ChannelCore::unbounded().with_batching(BatchConfig::up_to(8));
        let mut seqs = Vec::new();
        for i in 0..5 {
            let Stage::Staged { seq, flush, .. } = c.stage(HandlerKey(7), b"pay", i, SimTime::ZERO)
            else {
                panic!("stage refused");
            };
            assert!(!flush);
            seqs.push(seq);
        }
        assert_eq!(c.staged_len(), 5);
        assert_eq!(c.take_staged_tail(2), 2);
        assert_eq!(c.staged_len(), 3);
        for &m in &seqs[3..] {
            assert!(matches!(
                c.take_completed(m),
                Some(Err(OffloadError::Migrated))
            ));
            assert!(c.take_unsent(m), "migrated members are provably unsent");
        }
        // The kept prefix still flushes as a correctly re-enveloped
        // batch: the carrier covers exactly the remaining members.
        let FlushPrep::Ready(f) = c.take_flush() else {
            panic!("flush refused");
        };
        assert_eq!(f.msgs, 3);
        assert_eq!(f.res.seq, seqs[2], "carrier seq is the last kept member");
        let (members, err) = batch::member_ranges(&f.frame[HEADER_BYTES..]).unwrap();
        assert!(err.is_none(), "re-enveloped frame parses cleanly");
        let got: Vec<u64> = members.iter().map(|(h, _)| h.seq).collect();
        assert_eq!(got, seqs[..3]);
    }

    #[test]
    fn taking_the_whole_staged_tail_clears_the_accumulator() {
        let c = ChannelCore::unbounded().with_batching(BatchConfig::up_to(8));
        for i in 0..3 {
            let Stage::Staged { .. } = c.stage(HandlerKey(7), b"x", i, SimTime::ZERO) else {
                panic!("stage refused");
            };
        }
        assert_eq!(c.take_staged_tail(99), 3, "capped at what is staged");
        assert_eq!(c.staged_len(), 0);
        assert_eq!(c.in_flight(), 0, "no leaked accumulator entries");
        assert!(matches!(c.take_flush(), FlushPrep::Empty));
        assert_eq!(c.take_staged_tail(1), 0, "nothing left to reclaim");
    }

    #[test]
    fn note_miss_is_inert_without_recovery() {
        let c = ChannelCore::bounded(1, 1, 4096);
        let Reserve::Reserved(r) = reserve(&c) else {
            panic!("reserve failed");
        };
        for _ in 0..10_000 {
            assert!(matches!(c.note_miss(r.seq), super::MissVerdict::Keep));
        }
        assert_eq!(c.in_flight(), 1, "never times out without a policy");
    }

    #[test]
    fn recovery_retries_then_times_out_and_completion_cancels() {
        use ham::registry::HandlerKey;
        use ham::wire::{MsgHeader, MsgKind};
        let c = ChannelCore::bounded(2, 2, 4096).with_recovery(RecoveryPolicy {
            retry_after_misses: 2,
            max_retries: 1,
        });
        let header = |seq| MsgHeader {
            handler_key: HandlerKey(1),
            payload_len: 1,
            kind: MsgKind::Offload,
            reply_slot: 0,
            corr: 0,
            seq,
        };
        let Reserve::Reserved(r) = reserve(&c) else {
            panic!("reserve failed");
        };
        c.note_sent(r.seq, &header(r.seq), PooledFrame::detached(b"a".to_vec()));
        assert!(matches!(c.note_miss(r.seq), MissVerdict::Keep));
        assert!(matches!(
            c.note_miss(r.seq),
            MissVerdict::Retry { attempt: 1, .. }
        ));
        for _ in 0..3 {
            assert!(matches!(c.note_miss(r.seq), MissVerdict::Keep));
        }
        assert!(matches!(c.note_miss(r.seq), MissVerdict::TimedOut));
        // A frame whose result arrives is forgotten before any deadline.
        let Reserve::Reserved(r2) = reserve(&c) else {
            panic!("reserve failed");
        };
        c.note_sent(
            r2.seq,
            &header(r2.seq),
            PooledFrame::detached(b"b".to_vec()),
        );
        c.deposit(r2.seq, vec![0]);
        for _ in 0..10 {
            assert!(matches!(c.note_miss(r2.seq), MissVerdict::Keep));
        }
        // Control frames are never stored.
        let ctrl = MsgHeader {
            kind: MsgKind::Control,
            ..header(99)
        };
        c.note_sent(99, &ctrl, PooledFrame::detached(vec![]));
        for _ in 0..10 {
            assert!(matches!(c.note_miss(99), MissVerdict::Keep));
        }
    }

    // --- degrade / resume -------------------------------------------------

    fn offload_header(seq: u64) -> MsgHeader {
        MsgHeader {
            handler_key: HandlerKey(1),
            payload_len: 1,
            kind: MsgKind::Offload,
            reply_slot: 0,
            corr: 0,
            seq,
        }
    }

    fn degradable() -> ChannelCore {
        ChannelCore::unbounded().with_recovery(RecoveryPolicy::replay_only(3))
    }

    #[test]
    fn degrade_parks_posts_and_keeps_pending_alive() {
        use crate::types::NodeId;
        let c = degradable();
        let Reserve::Reserved(r) = reserve(&c) else {
            panic!("reserve failed");
        };
        c.note_sent(
            r.seq,
            &offload_header(r.seq),
            PooledFrame::detached(b"wire".to_vec()),
        );
        let lost = OffloadError::TargetLost(NodeId(3));
        assert_eq!(c.degrade(lost.clone()), Some(1));
        assert_eq!(c.degrade(lost.clone()), None, "first caller owns it");
        assert!(c.is_degraded());
        assert_eq!(c.degradation(), Some(lost));
        assert!(c.eviction().is_none(), "degraded is not evicted");
        // New posts park; control frames still pass (shutdown delivery).
        assert!(matches!(reserve(&c), Reserve::Full));
        assert!(matches!(
            c.try_reserve(true, 0, SimTime::ZERO, 0),
            Reserve::Reserved(_)
        ));
        // The in-flight offload was not failed.
        assert_eq!(c.in_flight(), 2, "pending survives degradation");
        assert!(c.take_completed(r.seq).is_none());
    }

    #[test]
    fn resume_replays_above_watermark_and_fails_at_or_below() {
        use crate::types::NodeId;
        let c = degradable();
        let mut seqs = Vec::new();
        for i in 0..4u64 {
            let Reserve::Reserved(r) = reserve(&c) else {
                panic!("reserve failed");
            };
            c.note_sent(
                r.seq,
                &offload_header(r.seq),
                PooledFrame::detached(vec![i as u8]),
            );
            seqs.push(r.seq);
        }
        let lost = OffloadError::TargetLost(NodeId(3));
        assert!(c.degrade(lost.clone()).is_some());
        // Device executed seqs 0 and 1 (watermark 1): they are
        // possibly-executed → TargetLost; 2 and 3 replay.
        let rep = c.resume(Some(1), lost.clone()).unwrap();
        assert_eq!(rep.lost, 2);
        assert_eq!(
            rep.replay.iter().map(|f| f.seq).collect::<Vec<_>>(),
            vec![2, 3],
            "replay set is exactly the provably-unexecuted seqs, in order"
        );
        assert_eq!(rep.replay[0].frame, vec![2u8]);
        assert_eq!(rep.replay[0].attempt, 1);
        assert!(!c.is_degraded());
        for &s in &seqs[..2] {
            assert_eq!(c.take_completed(s).unwrap().unwrap_err(), lost.clone());
        }
        // Replayed offloads stay pending and complete via deposit.
        assert_eq!(c.in_flight(), 2);
        c.deposit(2, b"ok".to_vec());
        assert_eq!(c.take_completed(2).unwrap().unwrap().as_slice(), b"ok");
        // Posts flow again after resume.
        assert!(matches!(reserve(&c), Reserve::Reserved(_)));
        // Double resume is a no-op.
        assert!(c.resume(None, lost).is_none());
    }

    #[test]
    fn double_disconnect_replays_again_with_bumped_attempt() {
        use crate::types::NodeId;
        let c = degradable();
        let Reserve::Reserved(r) = reserve(&c) else {
            panic!("reserve failed");
        };
        c.note_sent(
            r.seq,
            &offload_header(r.seq),
            PooledFrame::detached(b"w".to_vec()),
        );
        let lost = OffloadError::TargetLost(NodeId(3));
        assert!(c.degrade(lost.clone()).is_some());
        let rep = c.resume(None, lost.clone()).unwrap();
        assert_eq!((rep.replay.len(), rep.replay[0].attempt), (1, 1));
        // The link drops again before the replay's result arrives: the
        // frame is still above the watermark, so it replays again.
        assert!(c.degrade(lost.clone()).is_some());
        let rep = c.resume(None, lost.clone()).unwrap();
        assert_eq!((rep.replay.len(), rep.replay[0].attempt), (1, 2));
        // But if the watermark has swallowed it, it is lost instead.
        assert!(c.degrade(lost.clone()).is_some());
        let rep = c.resume(Some(r.seq), lost.clone()).unwrap();
        assert_eq!((rep.replay.len(), rep.lost), (0, 1));
        assert_eq!(c.take_completed(r.seq).unwrap().unwrap_err(), lost);
        assert_eq!(c.in_flight(), 0, "no leaked pending entries");
    }

    #[test]
    fn resume_without_replay_buffer_fails_everything_in_flight() {
        use crate::types::NodeId;
        // No recovery armed: nothing stored, so nothing is replayable.
        let c = ChannelCore::unbounded();
        let Reserve::Reserved(r) = reserve(&c) else {
            panic!("reserve failed");
        };
        let lost = OffloadError::TargetLost(NodeId(3));
        assert!(c.degrade(lost.clone()).is_some());
        let rep = c.resume(None, lost.clone()).unwrap();
        assert_eq!((rep.replay.len(), rep.lost), (0, 1));
        assert_eq!(c.take_completed(r.seq).unwrap().unwrap_err(), lost);
    }

    #[test]
    fn evict_wins_over_degrade_and_clears_it() {
        use crate::types::NodeId;
        let c = degradable();
        let Reserve::Reserved(r) = reserve(&c) else {
            panic!("reserve failed");
        };
        let lost = OffloadError::TargetLost(NodeId(3));
        assert!(c.degrade(lost.clone()).is_some());
        // Reconnect budget exhausted: the channel is evicted for good.
        assert_eq!(c.evict(lost.clone()), Some(1));
        assert!(!c.is_degraded(), "eviction clears the degraded latch");
        assert!(c.resume(None, lost.clone()).is_none(), "too late to resume");
        assert_eq!(c.take_completed(r.seq).unwrap().unwrap_err(), lost.clone());
        assert!(c.degrade(lost).is_none(), "evicted channels cannot degrade");
    }

    #[test]
    fn degraded_channel_keeps_staging_and_flushes_after_resume() {
        use crate::types::NodeId;
        let c = ChannelCore::unbounded()
            .with_batching(BatchConfig::up_to(8))
            .with_recovery(RecoveryPolicy::replay_only(3));
        let lost = OffloadError::TargetLost(NodeId(3));
        assert!(matches!(stage_one(&c, b"a"), Stage::Staged { .. }));
        assert!(c.degrade(lost.clone()).is_some());
        // Staging keeps working while degraded (no slots claimed)...
        assert!(matches!(stage_one(&c, b"b"), Stage::Staged { .. }));
        // ...but the envelope cannot flush until the session settles.
        assert!(matches!(c.take_flush(), FlushPrep::Full));
        let rep = c.resume(None, lost).unwrap();
        assert_eq!((rep.replay.len(), rep.lost), (0, 0));
        let FlushPrep::Ready(f) = c.take_flush() else {
            panic!("flush refused after resume");
        };
        assert_eq!(f.msgs, 2, "staged members survived the disconnect");
    }

    // --- batching ---------------------------------------------------------

    fn batched(recv: usize, send: usize, max_msgs: usize) -> ChannelCore {
        ChannelCore::bounded(recv, send, 4096).with_batching(BatchConfig::up_to(max_msgs))
    }

    fn stage_one(c: &ChannelCore, payload: &[u8]) -> Stage {
        c.stage(HandlerKey(9), payload, 0, SimTime::ZERO)
    }

    /// Deposit a well-formed batch result for `f`: each member's framed
    /// result is its own seq, little-endian.
    fn answer_batch(c: &ChannelCore, f: &FlushFrame, members: &[u64]) {
        let mut body = Vec::new();
        batch::begin_result(&mut body, members.len() as u32);
        for &m in members {
            batch::append_result_part(&mut body, m, &frame_result(Ok(m.to_le_bytes().to_vec())));
        }
        c.deposit(f.res.seq, frame_result(Ok(body)));
    }

    #[test]
    fn stage_flush_settle_fans_out_to_members() {
        let c = batched(2, 2, 4);
        for i in 0..3u64 {
            let Stage::Staged { seq, flush, .. } = stage_one(&c, b"xy") else {
                panic!("stage refused");
            };
            assert_eq!(seq, i);
            assert!(!flush, "below the watermark");
        }
        assert_eq!(c.in_flight(), 3, "staged messages count as in flight");
        let FlushPrep::Ready(f) = c.take_flush() else {
            panic!("flush refused");
        };
        assert_eq!((f.res.seq, f.msgs), (2, 3), "carrier is the last member");
        assert_eq!(f.header.kind, MsgKind::Batch);
        assert!(matches!(c.take_flush(), FlushPrep::Empty), "accum drained");
        // One slot pair for three messages.
        assert_eq!(c.pending_snapshot().len(), 1);
        assert_eq!(c.in_flight(), 3);
        answer_batch(&c, &f, &[0, 1, 2]);
        for m in 0..3u64 {
            let got = c.take_completed(m).unwrap().unwrap();
            assert_eq!(
                crate::target_loop::unframe_result_ref(&got).unwrap(),
                m.to_le_bytes()
            );
        }
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn count_watermark_requests_flush() {
        let c = batched(2, 2, 2);
        assert!(matches!(
            stage_one(&c, b"a"),
            Stage::Staged { flush: false, .. }
        ));
        assert!(matches!(
            stage_one(&c, b"a"),
            Stage::Staged { flush: true, .. }
        ));
    }

    #[test]
    fn byte_watermark_forces_flush_first_and_toobig_falls_through() {
        let c = ChannelCore::bounded(2, 2, 4096).with_batching(BatchConfig {
            max_msgs: 16,
            max_bytes: 256,
            ..BatchConfig::default()
        });
        // 100-byte payloads: two fit a 256-byte envelope (4 + 2·132),
        // a third does not.
        let p = [7u8; 100];
        assert!(matches!(stage_one(&c, &p), Stage::Staged { .. }));
        assert!(matches!(stage_one(&c, &p), Stage::FlushFirst));
        // A payload that alone overflows the envelope is not stageable.
        assert!(matches!(stage_one(&c, &[1u8; 300]), Stage::TooBig));
    }

    #[test]
    fn flush_refuses_when_rings_are_full_without_losing_the_batch() {
        let c = batched(1, 1, 8);
        let Reserve::Reserved(_r) = reserve(&c) else {
            panic!("reserve failed");
        };
        assert!(matches!(stage_one(&c, b"a"), Stage::Staged { .. }));
        assert!(matches!(c.take_flush(), FlushPrep::Full));
        assert_eq!(c.in_flight(), 2, "batch still staged after refusal");
    }

    #[test]
    fn fail_batch_errors_every_member_and_frees_slots() {
        let c = batched(1, 1, 4);
        for _ in 0..2 {
            assert!(matches!(stage_one(&c, b"a"), Stage::Staged { .. }));
        }
        let FlushPrep::Ready(f) = c.take_flush() else {
            panic!("flush refused");
        };
        c.fail_batch(f.res.seq, OffloadError::Shutdown);
        for m in [0u64, 1] {
            assert!(matches!(
                c.take_completed(m),
                Some(Err(OffloadError::Shutdown))
            ));
        }
        assert!(matches!(reserve(&c), Reserve::Reserved(_)), "slots freed");
    }

    #[test]
    fn evict_fails_staged_and_batched_members() {
        use crate::types::NodeId;
        let c = batched(2, 2, 2);
        // One flushed batch of two...
        for _ in 0..2 {
            assert!(matches!(stage_one(&c, b"a"), Stage::Staged { .. }));
        }
        let FlushPrep::Ready(_f) = c.take_flush() else {
            panic!("flush refused");
        };
        // ...plus one staged message.
        assert!(matches!(stage_one(&c, b"b"), Stage::Staged { .. }));
        let lost = OffloadError::TargetLost(NodeId(1));
        assert_eq!(c.evict(lost.clone()), Some(3), "members + staged");
        for m in 0..3u64 {
            assert_eq!(c.take_completed(m).unwrap().unwrap_err(), lost.clone());
        }
        assert_eq!(c.in_flight(), 0);
        assert!(matches!(stage_one(&c, b"c"), Stage::Lost(_)));
    }

    #[test]
    fn malformed_batch_result_errors_every_member() {
        let c = batched(2, 2, 4);
        for _ in 0..2 {
            assert!(matches!(stage_one(&c, b"a"), Stage::Staged { .. }));
        }
        let FlushPrep::Ready(f) = c.take_flush() else {
            panic!("flush refused");
        };
        // An error frame instead of a batch body: the target rejected
        // the envelope wholesale.
        c.deposit(
            f.res.seq,
            frame_result(Err(ham::HamError::Wire("bad".into()))),
        );
        for m in [0u64, 1] {
            assert!(matches!(
                c.take_completed(m),
                Some(Err(OffloadError::Backend(_)))
            ));
        }
    }

    #[test]
    fn missing_result_parts_error_their_members_only() {
        let c = batched(2, 2, 4);
        for _ in 0..3 {
            assert!(matches!(stage_one(&c, b"a"), Stage::Staged { .. }));
        }
        let FlushPrep::Ready(f) = c.take_flush() else {
            panic!("flush refused");
        };
        // Parts for members 0 and 2 only.
        let mut body = Vec::new();
        batch::begin_result(&mut body, 2);
        batch::append_result_part(&mut body, 0, &frame_result(Ok(vec![0])));
        batch::append_result_part(&mut body, 2, &frame_result(Ok(vec![2])));
        c.deposit(f.res.seq, frame_result(Ok(body)));
        assert!(c.take_completed(0).unwrap().is_ok());
        assert!(matches!(
            c.take_completed(1),
            Some(Err(OffloadError::Backend(_)))
        ));
        assert!(c.take_completed(2).unwrap().is_ok());
    }

    // --- credits ----------------------------------------------------------

    #[test]
    fn credit_limit_derives_from_rings_and_batching() {
        // Bounded: min(recv, send) frames, one message each.
        assert_eq!(ChannelCore::bounded(8, 8, 4096).credit_limit(), 8);
        assert_eq!(ChannelCore::bounded(4, 8, 4096).credit_limit(), 4);
        // Batching multiplies: each frame can carry max_msgs messages.
        assert_eq!(batched(8, 8, 8).credit_limit(), 64);
        // Unbounded rings fall back to the push-transport default.
        assert_eq!(
            ChannelCore::unbounded().credit_limit(),
            DEFAULT_PUSH_CREDITS
        );
        // Explicit override wins, floored at 1.
        assert_eq!(
            ChannelCore::unbounded().with_credit_limit(3).credit_limit(),
            3
        );
        assert_eq!(
            ChannelCore::bounded(8, 8, 4096)
                .with_credit_limit(0)
                .credit_limit(),
            1
        );
    }

    #[test]
    fn has_credit_tracks_in_flight() {
        let c = ChannelCore::bounded(1, 1, 4096);
        assert!(c.has_credit());
        let Reserve::Reserved(r) = reserve(&c) else {
            panic!("reserve failed");
        };
        assert!(!c.has_credit(), "one slot, one in flight");
        c.deposit(r.seq, vec![]);
        assert!(c.has_credit(), "completion returns the credit");
    }

    #[test]
    fn evicted_staged_members_are_unsent_but_wire_members_are_not() {
        use crate::types::NodeId;
        let c = batched(2, 2, 2);
        // Seqs 0-1 flush onto the wire; seq 2 stays staged.
        for _ in 0..2 {
            assert!(matches!(stage_one(&c, b"a"), Stage::Staged { .. }));
        }
        let FlushPrep::Ready(_f) = c.take_flush() else {
            panic!("flush refused");
        };
        assert!(matches!(stage_one(&c, b"b"), Stage::Staged { .. }));
        c.evict(OffloadError::TargetLost(NodeId(1)));
        assert!(!c.take_unsent(0), "reached the wire: may have executed");
        assert!(!c.take_unsent(1), "reached the wire: may have executed");
        assert!(c.take_unsent(2), "staged only: safe to resubmit");
        assert!(!c.take_unsent(2), "unsent markers are one-shot");
    }

    #[test]
    fn failed_batch_members_are_unsent() {
        let c = batched(1, 1, 4);
        for _ in 0..2 {
            assert!(matches!(stage_one(&c, b"a"), Stage::Staged { .. }));
        }
        let FlushPrep::Ready(f) = c.take_flush() else {
            panic!("flush refused");
        };
        c.fail_batch(f.res.seq, OffloadError::Backend("send failed".into()));
        assert!(c.take_unsent(0) && c.take_unsent(1));
    }

    /// One step of the model interleaving, decoded from a `(kind, i)`
    /// pair (the vendored proptest has no `prop_oneof`).
    #[derive(Clone, Debug)]
    enum Op {
        Reserve,
        /// Deposit the i-th oldest in-flight offload's result.
        Deposit(usize),
        /// Claim the completion of the i-th tracked seq.
        Take(usize),
    }

    fn decode_op((kind, i): (u8, usize)) -> Op {
        match kind {
            0 => Op::Reserve,
            1 => Op::Deposit(i),
            _ => Op::Take(i),
        }
    }

    proptest! {
        /// Random post/complete/claim interleavings never lose,
        /// duplicate, or corrupt a completion, and recv slots are
        /// assigned in strict rotation order.
        #[test]
        fn interleavings_preserve_every_completion(
            recv_slots in 1usize..4,
            send_slots in 1usize..4,
            ops in proptest::collection::vec((0u8..3, 0usize..16), 0..96),
        ) {
            let c = ChannelCore::bounded(recv_slots, send_slots, 4096);
            let mut in_flight: Vec<(u64, usize)> = Vec::new(); // (seq, recv_slot)
            let mut deposited: Vec<u64> = Vec::new();
            let mut claimed: Vec<u64> = Vec::new();
            let mut next_recv = 0usize;
            for op in ops.into_iter().map(decode_op) {
                match op {
                    Op::Reserve => match reserve(&c) {
                        Reserve::Reserved(r) => {
                            prop_assert_eq!(
                                r.recv_slot, next_recv,
                                "recv rotation broken"
                            );
                            next_recv = (next_recv + 1) % recv_slots;
                            in_flight.push((r.seq, r.recv_slot));
                        }
                        Reserve::Full => {
                            prop_assert!(
                                in_flight.len() >= recv_slots.min(send_slots)
                                    || !in_flight.is_empty(),
                                "refused while empty"
                            );
                        }
                        Reserve::Shutdown => prop_assert!(false, "never shut down"),
                        Reserve::Lost(_) => prop_assert!(false, "never evicted"),
                    },
                    Op::Deposit(i) => {
                        if let Some(&(seq, _)) = in_flight.get(i) {
                            c.deposit(seq, seq.to_le_bytes().to_vec());
                            in_flight.remove(i);
                            deposited.push(seq);
                        }
                    }
                    Op::Take(i) => {
                        if let Some(&seq) = deposited.get(i) {
                            let got = c.take_completed(seq);
                            prop_assert!(got.is_some(), "completion lost: seq {}", seq);
                            prop_assert_eq!(
                                got.unwrap().unwrap().as_slice(),
                                &seq.to_le_bytes()[..],
                                "completion corrupted"
                            );
                            deposited.remove(i);
                            claimed.push(seq);
                        }
                    }
                }
            }
            // Drain the tail: everything deposited is still claimable
            // exactly once, nothing claimed twice.
            for seq in deposited {
                prop_assert!(c.take_completed(seq).is_some(), "tail completion lost");
                claimed.push(seq);
            }
            for seq in &claimed {
                prop_assert!(c.take_completed(*seq).is_none(), "duplicate completion");
            }
            prop_assert_eq!(c.in_flight(), in_flight.len());
        }
    }

    /// One step of the batching model, decoded from a `(kind, i)` pair.
    #[derive(Clone, Debug)]
    enum BatchOp {
        /// Stage one message (flushing first / ignoring refusals as the
        /// engine would).
        Post,
        /// Flush the staged envelope if slots allow.
        Flush,
        /// Answer the i-th oldest in-flight batch.
        Answer(usize),
        /// Claim the completion of the i-th completed member.
        Take(usize),
    }

    fn decode_batch_op((kind, i): (u8, usize)) -> BatchOp {
        match kind {
            0 => BatchOp::Post,
            1 => BatchOp::Flush,
            2 => BatchOp::Answer(i),
            _ => BatchOp::Take(i),
        }
    }

    proptest! {
        /// Interleaved stage/flush/answer/claim schedules deliver every
        /// member's own result exactly once, whatever the batch
        /// boundaries — the oracle for the engine's post/flush/drain
        /// paths.
        #[test]
        fn batch_interleavings_deliver_every_member_exactly_once(
            recv_slots in 1usize..4,
            max_msgs in 2usize..6,
            ops in proptest::collection::vec((0u8..4, 0usize..16), 0..96),
        ) {
            let c = batched(recv_slots, recv_slots, max_msgs);
            let mut staged: Vec<u64> = Vec::new();
            // Flushed batches awaiting an answer: (carrier, members).
            let mut inflight: Vec<(u64, Vec<u64>)> = Vec::new();
            let mut answered: Vec<u64> = Vec::new();
            let mut claimed: Vec<u64> = Vec::new();
            let flush = |c: &ChannelCore,
                         staged: &mut Vec<u64>,
                         inflight: &mut Vec<(u64, Vec<u64>)>| {
                match c.take_flush() {
                    FlushPrep::Empty => prop_assert!(staged.is_empty(), "lost staging"),
                    FlushPrep::Full => prop_assert!(!inflight.is_empty(), "full while idle"),
                    FlushPrep::Ready(f) => {
                        prop_assert_eq!(f.msgs, staged.len(), "member count");
                        prop_assert_eq!(f.res.seq, *staged.last().unwrap());
                        inflight.push((f.res.seq, core::mem::take(staged)));
                    }
                }
            };
            for op in ops.into_iter().map(decode_batch_op) {
                match op {
                    BatchOp::Post => {
                        match stage_one(&c, b"m") {
                            Stage::Staged { seq, flush: now, .. } => {
                                staged.push(seq);
                                if now {
                                    flush(&c, &mut staged, &mut inflight);
                                }
                            }
                            Stage::FlushFirst => {
                                flush(&c, &mut staged, &mut inflight);
                            }
                            other => prop_assert!(false, "unexpected stage: {:?}", other),
                        }
                    }
                    BatchOp::Flush => flush(&c, &mut staged, &mut inflight),
                    BatchOp::Answer(i) => {
                        if !inflight.is_empty() {
                            let (carrier, members) = inflight.remove(i % inflight.len());
                            let mut body = Vec::new();
                            batch::begin_result(&mut body, members.len() as u32);
                            for &m in &members {
                                batch::append_result_part(
                                    &mut body,
                                    m,
                                    &frame_result(Ok(m.to_le_bytes().to_vec())),
                                );
                            }
                            c.deposit(carrier, frame_result(Ok(body)));
                            answered.extend(members);
                        }
                    }
                    BatchOp::Take(i) => {
                        if !answered.is_empty() {
                            let m = answered.remove(i % answered.len());
                            let got = c.take_completed(m);
                            prop_assert!(got.is_some(), "member completion lost: {}", m);
                            let frame = got.unwrap().unwrap();
                            let bytes = crate::target_loop::unframe_result_ref(&frame).unwrap();
                            prop_assert_eq!(bytes, &m.to_le_bytes()[..], "member result corrupted");
                            claimed.push(m);
                        }
                    }
                }
            }
            // Drain: flush and answer everything, then claim the tail.
            while !staged.is_empty() {
                flush(&c, &mut staged, &mut inflight);
                if let Some((carrier, members)) = inflight.pop() {
                    let mut body = Vec::new();
                    batch::begin_result(&mut body, members.len() as u32);
                    for &m in &members {
                        batch::append_result_part(
                            &mut body,
                            m,
                            &frame_result(Ok(m.to_le_bytes().to_vec())),
                        );
                    }
                    c.deposit(carrier, frame_result(Ok(body)));
                    answered.extend(members);
                }
            }
            for (carrier, members) in inflight.drain(..) {
                let mut body = Vec::new();
                batch::begin_result(&mut body, members.len() as u32);
                for &m in &members {
                    batch::append_result_part(
                        &mut body,
                        m,
                        &frame_result(Ok(m.to_le_bytes().to_vec())),
                    );
                }
                c.deposit(carrier, frame_result(Ok(body)));
                answered.extend(members);
            }
            for m in answered {
                prop_assert!(c.take_completed(m).is_some(), "tail member lost: {}", m);
                claimed.push(m);
            }
            for m in &claimed {
                prop_assert!(c.take_completed(*m).is_none(), "duplicate member: {}", m);
            }
            prop_assert_eq!(c.in_flight(), 0);
        }
    }
}
