//! The per-target channel state machine.

use super::pending::{PendingEntry, PendingTable};
use super::queue::CompletionQueue;
use super::ring::SlotRing;
use crate::OffloadError;
use aurora_sim_core::SimTime;
use parking_lot::Mutex;

/// A claimed pair of slots plus the sequence number minted for them —
/// what a backend needs to address its transport writes.
#[derive(Clone, Copy, Debug)]
pub struct Reservation {
    /// Sequence number of the offload (also its wire `seq`).
    pub seq: u64,
    /// Receive slot the message goes into.
    pub recv_slot: usize,
    /// Send slot the result will come back in (wire `reply_slot`).
    pub send_slot: usize,
}

/// Outcome of [`ChannelCore::try_reserve`].
#[derive(Debug)]
pub enum Reserve {
    /// Slots claimed; post the frame.
    Reserved(Reservation),
    /// No slot free right now — drain completions and retry.
    Full,
    /// The channel is shut down; nothing may be posted.
    Shutdown,
}

/// Everything guarded by the channel lock.
struct ChanState {
    recv: SlotRing,
    send: SlotRing,
    pending: PendingTable,
    completed: CompletionQueue,
    seq: u64,
    shutdown: bool,
}

/// The host-side state of one target's channel: slot rings, the
/// in-flight table and the completion queue under a single lock, plus
/// the message-size limit the engine enforces before reserving.
///
/// Backends own one per target and expose it through
/// [`crate::CommBackend::channel`]; all transitions are driven by
/// [`crate::chan::engine`]. The state machine per offload:
///
/// ```text
/// try_reserve ──► pending ──(flags ready / deposit)──► completed ──take──► future
///      │                                                     ▲
///      └── cancel (send failed: slots freed, seq retired) ───┘ (errors park here too)
/// ```
pub struct ChannelCore {
    state: Mutex<ChanState>,
    max_msg_bytes: usize,
}

impl ChannelCore {
    /// A channel over real slot arrays: `recv_slots` round-robin receive
    /// slots, `send_slots` first-free send slots, payloads capped at
    /// `max_msg_bytes`.
    pub fn bounded(recv_slots: usize, send_slots: usize, max_msg_bytes: usize) -> Self {
        Self {
            state: Mutex::new(ChanState {
                recv: SlotRing::round_robin(recv_slots),
                send: SlotRing::first_free(send_slots),
                pending: PendingTable::new(),
                completed: CompletionQueue::new(),
                seq: 0,
                shutdown: false,
            }),
            max_msg_bytes,
        }
    }

    /// A channel for transports without slot arrays (in-process
    /// channels, TCP streams): reservations never refuse and payloads
    /// are unlimited.
    pub fn unbounded() -> Self {
        Self {
            state: Mutex::new(ChanState {
                recv: SlotRing::unbounded(),
                send: SlotRing::unbounded(),
                pending: PendingTable::new(),
                completed: CompletionQueue::new(),
                seq: 0,
                shutdown: false,
            }),
            max_msg_bytes: usize::MAX,
        }
    }

    /// Largest payload the transport's slots can carry.
    pub fn max_msg_bytes(&self) -> usize {
        self.max_msg_bytes
    }

    /// Claim a slot pair and mint a sequence number. Control frames
    /// (`control = true`) may be posted into a shut-down channel — that
    /// is how shutdown itself is delivered.
    pub fn try_reserve(&self, control: bool, offload: u64, posted_at: SimTime) -> Reserve {
        let mut st = self.state.lock();
        if st.shutdown && !control {
            return Reserve::Shutdown;
        }
        let Some(recv_slot) = st.recv.acquire() else {
            return Reserve::Full;
        };
        let Some(send_slot) = st.send.acquire() else {
            // Rewind, don't release: the rotation must re-offer this
            // recv slot, since the target never saw it claimed.
            st.recv.unacquire(recv_slot);
            return Reserve::Full;
        };
        let seq = st.seq;
        st.seq += 1;
        st.pending.insert(
            seq,
            PendingEntry {
                recv_slot,
                send_slot,
                offload,
                posted_at,
            },
        );
        Reserve::Reserved(Reservation {
            seq,
            recv_slot,
            send_slot,
        })
    }

    /// Retire a reservation whose frame never made it onto the
    /// transport: slots return to the rings, the seq is abandoned.
    pub fn cancel(&self, seq: u64) {
        let mut st = self.state.lock();
        if let Some(e) = st.pending.remove(seq) {
            st.recv.release(e.recv_slot);
            st.send.release(e.send_slot);
        }
    }

    /// Remove an in-flight entry for completion. Returns `None` if
    /// another thread already claimed it (the completion race is
    /// resolved here, under the lock).
    pub fn take_pending(&self, seq: u64) -> Option<PendingEntry> {
        self.state.lock().pending.remove(seq)
    }

    /// Snapshot of all in-flight offloads, ordered by seq.
    pub fn pending_snapshot(&self) -> Vec<(u64, PendingEntry)> {
        self.state.lock().pending.snapshot()
    }

    /// Number of in-flight offloads.
    pub fn in_flight(&self) -> usize {
        self.state.lock().pending.len()
    }

    /// Finish an offload whose entry was already removed with
    /// [`Self::take_pending`]: free its slots and park the result for
    /// its future.
    pub fn finish(&self, seq: u64, entry: &PendingEntry, result: Result<Vec<u8>, OffloadError>) {
        let mut st = self.state.lock();
        st.recv.release(entry.recv_slot);
        st.send.release(entry.send_slot);
        st.completed.push(seq, result);
    }

    /// Push-transport completion path: a receiver thread deposits a
    /// finished result frame. Unknown sequence numbers are dropped
    /// (late frames racing a shutdown).
    pub fn deposit(&self, seq: u64, frame: Vec<u8>) {
        let mut st = self.state.lock();
        if let Some(e) = st.pending.remove(seq) {
            st.recv.release(e.recv_slot);
            st.send.release(e.send_slot);
            st.completed.push(seq, Ok(frame));
        }
    }

    /// Claim a parked completion.
    pub fn take_completed(&self, seq: u64) -> Option<Result<Vec<u8>, OffloadError>> {
        self.state.lock().completed.take(seq)
    }

    /// Mark the channel shut down; returns the *previous* state so the
    /// first caller (and only the first) runs the shutdown protocol.
    pub fn begin_shutdown(&self) -> bool {
        core::mem::replace(&mut self.state.lock().shutdown, true)
    }

    /// True once [`Self::begin_shutdown`] has run.
    pub fn is_shutdown(&self) -> bool {
        self.state.lock().shutdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn reserve(c: &ChannelCore) -> Reserve {
        c.try_reserve(false, 0, SimTime::ZERO)
    }

    #[test]
    fn reserve_post_complete_take() {
        let c = ChannelCore::bounded(2, 2, 4096);
        let Reserve::Reserved(r) = reserve(&c) else {
            panic!("reserve failed");
        };
        assert_eq!((r.seq, r.recv_slot, r.send_slot), (0, 0, 0));
        let e = c.take_pending(r.seq).unwrap();
        c.finish(r.seq, &e, Ok(b"done".to_vec()));
        assert_eq!(c.take_completed(r.seq).unwrap().unwrap(), b"done");
        assert!(c.take_completed(r.seq).is_none(), "claims are one-shot");
    }

    #[test]
    fn full_rings_refuse_until_freed() {
        let c = ChannelCore::bounded(1, 1, 4096);
        let Reserve::Reserved(r) = reserve(&c) else {
            panic!("reserve failed");
        };
        assert!(matches!(reserve(&c), Reserve::Full));
        c.deposit(r.seq, vec![]);
        assert!(matches!(reserve(&c), Reserve::Reserved(_)));
    }

    #[test]
    fn cancel_frees_slots_and_retires_seq() {
        let c = ChannelCore::bounded(1, 1, 4096);
        let Reserve::Reserved(r) = reserve(&c) else {
            panic!("reserve failed");
        };
        c.cancel(r.seq);
        let Reserve::Reserved(r2) = reserve(&c) else {
            panic!("slots not freed");
        };
        assert_eq!(r2.seq, 1, "sequence numbers are never reused");
        assert!(c.take_completed(r.seq).is_none());
    }

    #[test]
    fn shutdown_blocks_posts_but_not_control() {
        let c = ChannelCore::bounded(2, 2, 4096);
        assert!(!c.begin_shutdown());
        assert!(c.begin_shutdown(), "second caller sees it already down");
        assert!(matches!(reserve(&c), Reserve::Shutdown));
        assert!(matches!(
            c.try_reserve(true, 0, SimTime::ZERO),
            Reserve::Reserved(_)
        ));
    }

    #[test]
    fn deposit_for_unknown_seq_is_dropped() {
        let c = ChannelCore::unbounded();
        c.deposit(7, b"late".to_vec());
        assert!(c.take_completed(7).is_none());
    }

    /// One step of the model interleaving, decoded from a `(kind, i)`
    /// pair (the vendored proptest has no `prop_oneof`).
    #[derive(Clone, Debug)]
    enum Op {
        Reserve,
        /// Deposit the i-th oldest in-flight offload's result.
        Deposit(usize),
        /// Claim the completion of the i-th tracked seq.
        Take(usize),
    }

    fn decode_op((kind, i): (u8, usize)) -> Op {
        match kind {
            0 => Op::Reserve,
            1 => Op::Deposit(i),
            _ => Op::Take(i),
        }
    }

    proptest! {
        /// Random post/complete/claim interleavings never lose,
        /// duplicate, or corrupt a completion, and recv slots are
        /// assigned in strict rotation order.
        #[test]
        fn interleavings_preserve_every_completion(
            recv_slots in 1usize..4,
            send_slots in 1usize..4,
            ops in proptest::collection::vec((0u8..3, 0usize..16), 0..96),
        ) {
            let c = ChannelCore::bounded(recv_slots, send_slots, 4096);
            let mut in_flight: Vec<(u64, usize)> = Vec::new(); // (seq, recv_slot)
            let mut deposited: Vec<u64> = Vec::new();
            let mut claimed: Vec<u64> = Vec::new();
            let mut next_recv = 0usize;
            for op in ops.into_iter().map(decode_op) {
                match op {
                    Op::Reserve => match reserve(&c) {
                        Reserve::Reserved(r) => {
                            prop_assert_eq!(
                                r.recv_slot, next_recv,
                                "recv rotation broken"
                            );
                            next_recv = (next_recv + 1) % recv_slots;
                            in_flight.push((r.seq, r.recv_slot));
                        }
                        Reserve::Full => {
                            prop_assert!(
                                in_flight.len() >= recv_slots.min(send_slots)
                                    || !in_flight.is_empty(),
                                "refused while empty"
                            );
                        }
                        Reserve::Shutdown => prop_assert!(false, "never shut down"),
                    },
                    Op::Deposit(i) => {
                        if let Some(&(seq, _)) = in_flight.get(i) {
                            c.deposit(seq, seq.to_le_bytes().to_vec());
                            in_flight.remove(i);
                            deposited.push(seq);
                        }
                    }
                    Op::Take(i) => {
                        if let Some(&seq) = deposited.get(i) {
                            let got = c.take_completed(seq);
                            prop_assert!(got.is_some(), "completion lost: seq {}", seq);
                            prop_assert_eq!(
                                got.unwrap().unwrap(),
                                seq.to_le_bytes().to_vec(),
                                "completion corrupted"
                            );
                            deposited.remove(i);
                            claimed.push(seq);
                        }
                    }
                }
            }
            // Drain the tail: everything deposited is still claimable
            // exactly once, nothing claimed twice.
            for seq in deposited {
                prop_assert!(c.take_completed(seq).is_some(), "tail completion lost");
                claimed.push(seq);
            }
            for seq in &claimed {
                prop_assert!(c.take_completed(*seq).is_none(), "duplicate completion");
            }
            prop_assert_eq!(c.in_flight(), in_flight.len());
        }
    }
}
