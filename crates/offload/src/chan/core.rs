//! The per-target channel state machine.

use super::pending::{PendingEntry, PendingTable};
use super::queue::CompletionQueue;
use super::recovery::{MissVerdict, RecoveryPolicy, RecoveryState};
use super::ring::SlotRing;
use crate::OffloadError;
use aurora_sim_core::SimTime;
use ham::wire::{MsgHeader, MsgKind};
use parking_lot::Mutex;

/// A claimed pair of slots plus the sequence number minted for them —
/// what a backend needs to address its transport writes.
#[derive(Clone, Copy, Debug)]
pub struct Reservation {
    /// Sequence number of the offload (also its wire `seq`).
    pub seq: u64,
    /// Receive slot the message goes into.
    pub recv_slot: usize,
    /// Send slot the result will come back in (wire `reply_slot`).
    pub send_slot: usize,
    /// Send attempt (0 = original post, `n` = n-th recovery re-send);
    /// fault injection keys frame-drop decisions on `(seq, attempt)`.
    pub attempt: u32,
}

/// Outcome of [`ChannelCore::try_reserve`].
#[derive(Debug)]
pub enum Reserve {
    /// Slots claimed; post the frame.
    Reserved(Reservation),
    /// No slot free right now — drain completions and retry.
    Full,
    /// The channel is shut down; nothing may be posted.
    Shutdown,
    /// The target was evicted; the error says why it is gone.
    Lost(OffloadError),
}

/// Everything guarded by the channel lock.
struct ChanState {
    recv: SlotRing,
    send: SlotRing,
    pending: PendingTable,
    completed: CompletionQueue,
    seq: u64,
    shutdown: bool,
    /// `Some(why)` once the target was evicted: every in-flight offload
    /// was failed and new reservations are refused with this error.
    evicted: Option<OffloadError>,
    /// Armed timeout/retry policy plus stored frames (fault-tolerant
    /// channels only; `None` keeps the historical always-wait behavior).
    recovery: Option<RecoveryState>,
}

/// The host-side state of one target's channel: slot rings, the
/// in-flight table and the completion queue under a single lock, plus
/// the message-size limit the engine enforces before reserving.
///
/// Backends own one per target and expose it through
/// [`crate::CommBackend::channel`]; all transitions are driven by
/// [`crate::chan::engine`]. The state machine per offload:
///
/// ```text
/// try_reserve ──► pending ──(flags ready / deposit)──► completed ──take──► future
///      │             │                                       ▲
///      │             ├─(deadline, budget left)─ retry ───────┤ (same seq/slots)
///      │             ├─(deadline, budget gone)─ Err(Timeout)─┤
///      │             └─(transport dead)─ evict: Err(lost) ───┘ (errors park here too)
///      └── cancel (send failed: slots freed, seq retired)
/// ```
///
/// The retry/timeout edges exist only when a [`RecoveryPolicy`] is
/// armed; eviction ([`ChannelCore::evict`]) fails every in-flight
/// offload at once and latches the channel so later reservations refuse
/// with the eviction error ([`Reserve::Lost`]).
pub struct ChannelCore {
    state: Mutex<ChanState>,
    max_msg_bytes: usize,
}

impl ChannelCore {
    /// A channel over real slot arrays: `recv_slots` round-robin receive
    /// slots, `send_slots` first-free send slots, payloads capped at
    /// `max_msg_bytes`.
    pub fn bounded(recv_slots: usize, send_slots: usize, max_msg_bytes: usize) -> Self {
        Self {
            state: Mutex::new(ChanState {
                recv: SlotRing::round_robin(recv_slots),
                send: SlotRing::first_free(send_slots),
                pending: PendingTable::new(),
                completed: CompletionQueue::new(),
                seq: 0,
                shutdown: false,
                evicted: None,
                recovery: None,
            }),
            max_msg_bytes,
        }
    }

    /// A channel for transports without slot arrays (in-process
    /// channels, TCP streams): reservations never refuse and payloads
    /// are unlimited.
    pub fn unbounded() -> Self {
        Self {
            state: Mutex::new(ChanState {
                recv: SlotRing::unbounded(),
                send: SlotRing::unbounded(),
                pending: PendingTable::new(),
                completed: CompletionQueue::new(),
                seq: 0,
                shutdown: false,
                evicted: None,
                recovery: None,
            }),
            max_msg_bytes: usize::MAX,
        }
    }

    /// Arm a timeout/retry policy on this channel (builder style — used
    /// by fault-tolerant backend constructors). Without this, in-flight
    /// offloads wait forever, exactly as before.
    pub fn with_recovery(self, policy: RecoveryPolicy) -> Self {
        self.state.lock().recovery = Some(RecoveryState::new(policy));
        self
    }

    /// Largest payload the transport's slots can carry.
    pub fn max_msg_bytes(&self) -> usize {
        self.max_msg_bytes
    }

    /// Claim a slot pair and mint a sequence number. Control frames
    /// (`control = true`) may be posted into a shut-down channel — that
    /// is how shutdown itself is delivered.
    pub fn try_reserve(&self, control: bool, offload: u64, posted_at: SimTime) -> Reserve {
        let mut st = self.state.lock();
        if st.shutdown && !control {
            return Reserve::Shutdown;
        }
        // An evicted target is gone for control frames too — there is
        // nobody left to deliver them to.
        if let Some(err) = &st.evicted {
            return Reserve::Lost(err.clone());
        }
        let Some(recv_slot) = st.recv.acquire() else {
            return Reserve::Full;
        };
        let Some(send_slot) = st.send.acquire() else {
            // Rewind, don't release: the rotation must re-offer this
            // recv slot, since the target never saw it claimed.
            st.recv.unacquire(recv_slot);
            return Reserve::Full;
        };
        let seq = st.seq;
        st.seq += 1;
        st.pending.insert(
            seq,
            PendingEntry {
                recv_slot,
                send_slot,
                offload,
                posted_at,
            },
        );
        Reserve::Reserved(Reservation {
            seq,
            recv_slot,
            send_slot,
            attempt: 0,
        })
    }

    /// Retire a reservation whose frame never made it onto the
    /// transport: slots return to the rings, the seq is abandoned.
    pub fn cancel(&self, seq: u64) {
        let mut st = self.state.lock();
        if let Some(e) = st.pending.remove(seq) {
            st.recv.release(e.recv_slot);
            st.send.release(e.send_slot);
        }
        if let Some(r) = st.recovery.as_mut() {
            r.forget(seq);
        }
    }

    /// Remove an in-flight entry for completion. Returns `None` if
    /// another thread already claimed it (the completion race is
    /// resolved here, under the lock).
    pub fn take_pending(&self, seq: u64) -> Option<PendingEntry> {
        let mut st = self.state.lock();
        let e = st.pending.remove(seq);
        if e.is_some() {
            if let Some(r) = st.recovery.as_mut() {
                r.forget(seq);
            }
        }
        e
    }

    /// Record a successfully-sent frame for possible recovery re-sends.
    /// Control frames are not retryable; without an armed
    /// [`RecoveryPolicy`] this is a no-op.
    pub fn note_sent(&self, seq: u64, header: &MsgHeader, payload: &[u8]) {
        if !matches!(header.kind, MsgKind::Offload) {
            return;
        }
        if let Some(r) = self.state.lock().recovery.as_mut() {
            r.store(seq, *header, payload);
        }
    }

    /// Count one fruitless flag sweep against `seq` and apply the armed
    /// deadline policy. [`MissVerdict::Keep`] when no policy is armed.
    pub fn note_miss(&self, seq: u64) -> MissVerdict {
        match self.state.lock().recovery.as_mut() {
            Some(r) => r.miss(seq),
            None => MissVerdict::Keep,
        }
    }

    /// Evict the target: fail every in-flight offload with `err`, free
    /// their slots, refuse all future reservations with `err`. Returns
    /// the number of offloads failed, or `None` if already evicted (the
    /// first caller runs the eviction; later callers see a no-op).
    pub fn evict(&self, err: OffloadError) -> Option<usize> {
        let mut st = self.state.lock();
        if st.evicted.is_some() {
            return None;
        }
        st.evicted = Some(err.clone());
        if let Some(r) = st.recovery.as_mut() {
            r.clear();
        }
        let seqs: Vec<u64> = st.pending.snapshot().into_iter().map(|(s, _)| s).collect();
        let failed = seqs.len();
        for seq in seqs {
            if let Some(e) = st.pending.remove(seq) {
                st.recv.release(e.recv_slot);
                st.send.release(e.send_slot);
                st.completed.push(seq, Err(err.clone()));
            }
        }
        Some(failed)
    }

    /// Why the target was evicted, if it was.
    pub fn eviction(&self) -> Option<OffloadError> {
        self.state.lock().evicted.clone()
    }

    /// Snapshot of all in-flight offloads, ordered by seq.
    pub fn pending_snapshot(&self) -> Vec<(u64, PendingEntry)> {
        self.state.lock().pending.snapshot()
    }

    /// Number of in-flight offloads.
    pub fn in_flight(&self) -> usize {
        self.state.lock().pending.len()
    }

    /// Finish an offload whose entry was already removed with
    /// [`Self::take_pending`]: free its slots and park the result for
    /// its future.
    pub fn finish(&self, seq: u64, entry: &PendingEntry, result: Result<Vec<u8>, OffloadError>) {
        let mut st = self.state.lock();
        st.recv.release(entry.recv_slot);
        st.send.release(entry.send_slot);
        st.completed.push(seq, result);
    }

    /// Push-transport completion path: a receiver thread deposits a
    /// finished result frame. Unknown sequence numbers are dropped
    /// (late frames racing a shutdown).
    pub fn deposit(&self, seq: u64, frame: Vec<u8>) {
        let mut st = self.state.lock();
        if let Some(e) = st.pending.remove(seq) {
            st.recv.release(e.recv_slot);
            st.send.release(e.send_slot);
            st.completed.push(seq, Ok(frame));
            if let Some(r) = st.recovery.as_mut() {
                r.forget(seq);
            }
        }
    }

    /// Claim a parked completion.
    pub fn take_completed(&self, seq: u64) -> Option<Result<Vec<u8>, OffloadError>> {
        self.state.lock().completed.take(seq)
    }

    /// Mark the channel shut down; returns the *previous* state so the
    /// first caller (and only the first) runs the shutdown protocol.
    pub fn begin_shutdown(&self) -> bool {
        core::mem::replace(&mut self.state.lock().shutdown, true)
    }

    /// True once [`Self::begin_shutdown`] has run.
    pub fn is_shutdown(&self) -> bool {
        self.state.lock().shutdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn reserve(c: &ChannelCore) -> Reserve {
        c.try_reserve(false, 0, SimTime::ZERO)
    }

    #[test]
    fn reserve_post_complete_take() {
        let c = ChannelCore::bounded(2, 2, 4096);
        let Reserve::Reserved(r) = reserve(&c) else {
            panic!("reserve failed");
        };
        assert_eq!((r.seq, r.recv_slot, r.send_slot), (0, 0, 0));
        let e = c.take_pending(r.seq).unwrap();
        c.finish(r.seq, &e, Ok(b"done".to_vec()));
        assert_eq!(c.take_completed(r.seq).unwrap().unwrap(), b"done");
        assert!(c.take_completed(r.seq).is_none(), "claims are one-shot");
    }

    #[test]
    fn full_rings_refuse_until_freed() {
        let c = ChannelCore::bounded(1, 1, 4096);
        let Reserve::Reserved(r) = reserve(&c) else {
            panic!("reserve failed");
        };
        assert!(matches!(reserve(&c), Reserve::Full));
        c.deposit(r.seq, vec![]);
        assert!(matches!(reserve(&c), Reserve::Reserved(_)));
    }

    #[test]
    fn cancel_frees_slots_and_retires_seq() {
        let c = ChannelCore::bounded(1, 1, 4096);
        let Reserve::Reserved(r) = reserve(&c) else {
            panic!("reserve failed");
        };
        c.cancel(r.seq);
        let Reserve::Reserved(r2) = reserve(&c) else {
            panic!("slots not freed");
        };
        assert_eq!(r2.seq, 1, "sequence numbers are never reused");
        assert!(c.take_completed(r.seq).is_none());
    }

    #[test]
    fn shutdown_blocks_posts_but_not_control() {
        let c = ChannelCore::bounded(2, 2, 4096);
        assert!(!c.begin_shutdown());
        assert!(c.begin_shutdown(), "second caller sees it already down");
        assert!(matches!(reserve(&c), Reserve::Shutdown));
        assert!(matches!(
            c.try_reserve(true, 0, SimTime::ZERO),
            Reserve::Reserved(_)
        ));
    }

    #[test]
    fn deposit_for_unknown_seq_is_dropped() {
        let c = ChannelCore::unbounded();
        c.deposit(7, b"late".to_vec());
        assert!(c.take_completed(7).is_none());
    }

    #[test]
    fn evict_fails_pending_frees_slots_and_latches() {
        use crate::types::NodeId;
        let c = ChannelCore::bounded(2, 2, 4096);
        let Reserve::Reserved(r1) = reserve(&c) else {
            panic!("reserve failed");
        };
        let Reserve::Reserved(r2) = reserve(&c) else {
            panic!("reserve failed");
        };
        let lost = OffloadError::TargetLost(NodeId(1));
        assert_eq!(c.evict(lost.clone()), Some(2));
        assert_eq!(c.evict(lost.clone()), None, "second eviction is a no-op");
        assert_eq!(c.in_flight(), 0, "no leaked pending entries");
        for seq in [r1.seq, r2.seq] {
            assert_eq!(c.take_completed(seq).unwrap().unwrap_err(), lost);
        }
        // Later reservations refuse with the eviction error — even
        // control frames: the target is gone.
        assert!(matches!(
            reserve(&c),
            Reserve::Lost(OffloadError::TargetLost(_))
        ));
        assert!(matches!(
            c.try_reserve(true, 0, SimTime::ZERO),
            Reserve::Lost(_)
        ));
        assert_eq!(c.eviction(), Some(lost));
        // Late deposits for retired seqs are dropped.
        c.deposit(r1.seq, b"late".to_vec());
        assert!(c.take_completed(r1.seq).is_none());
    }

    #[test]
    fn note_miss_is_inert_without_recovery() {
        let c = ChannelCore::bounded(1, 1, 4096);
        let Reserve::Reserved(r) = reserve(&c) else {
            panic!("reserve failed");
        };
        for _ in 0..10_000 {
            assert!(matches!(c.note_miss(r.seq), super::MissVerdict::Keep));
        }
        assert_eq!(c.in_flight(), 1, "never times out without a policy");
    }

    #[test]
    fn recovery_retries_then_times_out_and_completion_cancels() {
        use ham::registry::HandlerKey;
        use ham::wire::{MsgHeader, MsgKind};
        let c = ChannelCore::bounded(2, 2, 4096).with_recovery(RecoveryPolicy {
            retry_after_misses: 2,
            max_retries: 1,
        });
        let header = |seq| MsgHeader {
            handler_key: HandlerKey(1),
            payload_len: 1,
            kind: MsgKind::Offload,
            reply_slot: 0,
            corr: 0,
            seq,
        };
        let Reserve::Reserved(r) = reserve(&c) else {
            panic!("reserve failed");
        };
        c.note_sent(r.seq, &header(r.seq), b"a");
        assert!(matches!(c.note_miss(r.seq), MissVerdict::Keep));
        assert!(matches!(
            c.note_miss(r.seq),
            MissVerdict::Retry { attempt: 1, .. }
        ));
        for _ in 0..3 {
            assert!(matches!(c.note_miss(r.seq), MissVerdict::Keep));
        }
        assert!(matches!(c.note_miss(r.seq), MissVerdict::TimedOut));
        // A frame whose result arrives is forgotten before any deadline.
        let Reserve::Reserved(r2) = reserve(&c) else {
            panic!("reserve failed");
        };
        c.note_sent(r2.seq, &header(r2.seq), b"b");
        c.deposit(r2.seq, vec![0]);
        for _ in 0..10 {
            assert!(matches!(c.note_miss(r2.seq), MissVerdict::Keep));
        }
        // Control frames are never stored.
        let ctrl = MsgHeader {
            kind: MsgKind::Control,
            ..header(99)
        };
        c.note_sent(99, &ctrl, &[]);
        for _ in 0..10 {
            assert!(matches!(c.note_miss(99), MissVerdict::Keep));
        }
    }

    /// One step of the model interleaving, decoded from a `(kind, i)`
    /// pair (the vendored proptest has no `prop_oneof`).
    #[derive(Clone, Debug)]
    enum Op {
        Reserve,
        /// Deposit the i-th oldest in-flight offload's result.
        Deposit(usize),
        /// Claim the completion of the i-th tracked seq.
        Take(usize),
    }

    fn decode_op((kind, i): (u8, usize)) -> Op {
        match kind {
            0 => Op::Reserve,
            1 => Op::Deposit(i),
            _ => Op::Take(i),
        }
    }

    proptest! {
        /// Random post/complete/claim interleavings never lose,
        /// duplicate, or corrupt a completion, and recv slots are
        /// assigned in strict rotation order.
        #[test]
        fn interleavings_preserve_every_completion(
            recv_slots in 1usize..4,
            send_slots in 1usize..4,
            ops in proptest::collection::vec((0u8..3, 0usize..16), 0..96),
        ) {
            let c = ChannelCore::bounded(recv_slots, send_slots, 4096);
            let mut in_flight: Vec<(u64, usize)> = Vec::new(); // (seq, recv_slot)
            let mut deposited: Vec<u64> = Vec::new();
            let mut claimed: Vec<u64> = Vec::new();
            let mut next_recv = 0usize;
            for op in ops.into_iter().map(decode_op) {
                match op {
                    Op::Reserve => match reserve(&c) {
                        Reserve::Reserved(r) => {
                            prop_assert_eq!(
                                r.recv_slot, next_recv,
                                "recv rotation broken"
                            );
                            next_recv = (next_recv + 1) % recv_slots;
                            in_flight.push((r.seq, r.recv_slot));
                        }
                        Reserve::Full => {
                            prop_assert!(
                                in_flight.len() >= recv_slots.min(send_slots)
                                    || !in_flight.is_empty(),
                                "refused while empty"
                            );
                        }
                        Reserve::Shutdown => prop_assert!(false, "never shut down"),
                        Reserve::Lost(_) => prop_assert!(false, "never evicted"),
                    },
                    Op::Deposit(i) => {
                        if let Some(&(seq, _)) = in_flight.get(i) {
                            c.deposit(seq, seq.to_le_bytes().to_vec());
                            in_flight.remove(i);
                            deposited.push(seq);
                        }
                    }
                    Op::Take(i) => {
                        if let Some(&seq) = deposited.get(i) {
                            let got = c.take_completed(seq);
                            prop_assert!(got.is_some(), "completion lost: seq {}", seq);
                            prop_assert_eq!(
                                got.unwrap().unwrap(),
                                seq.to_le_bytes().to_vec(),
                                "completion corrupted"
                            );
                            deposited.remove(i);
                            claimed.push(seq);
                        }
                    }
                }
            }
            // Drain the tail: everything deposited is still claimable
            // exactly once, nothing claimed twice.
            for seq in deposited {
                prop_assert!(c.take_completed(seq).is_some(), "tail completion lost");
                claimed.push(seq);
            }
            for seq in &claimed {
                prop_assert!(c.take_completed(*seq).is_none(), "duplicate completion");
            }
            prop_assert_eq!(c.in_flight(), in_flight.len());
        }
    }
}
