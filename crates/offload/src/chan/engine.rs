//! The protocol engine: drives a [`ChannelCore`] against a backend's
//! transport verbs.
//!
//! Every host-side transition an offload goes through — reserve (or
//! stage, with batching on), frame, post, flag sweep, fetch, unframe,
//! claim — happens in these functions, for all transports. Backends
//! contribute only [`CommBackend::send_frame`] /
//! [`CommBackend::poll_flags`] / [`CommBackend::fetch_frame`] (or a
//! receiver thread that calls [`super::ChannelCore::deposit`]).

use super::adaptive::Decision;
use super::backoff::Backoff;
use super::core::{ChannelCore, FlushFrame, FlushPrep, Reservation, Reserve, Stage};
use super::pending::PendingEntry;
use super::pool::PooledFrame;
use super::recovery::MissVerdict;
use crate::backend::CommBackend;
use crate::types::NodeId;
use crate::OffloadError;
use aurora_sim_core::trace::{self, OffloadId};
use ham::registry::HandlerKey;
use ham::wire::{MsgHeader, MsgKind, HEADER_BYTES};

/// Post an offload message. With batching off (the default) this
/// reserves slots (draining completions while the rings are full),
/// frames, and hands the frame to the transport. With batching on the
/// message is *staged* into the channel's envelope instead, and only a
/// tripped watermark — or a later [`flush`] / blocking wait — puts it on
/// the wire. Either way, returns the sequence number the result will be
/// claimable under.
pub fn post<B: CommBackend + ?Sized>(
    backend: &B,
    target: NodeId,
    key: HandlerKey,
    payload: &[u8],
) -> Result<u64, OffloadError> {
    let chan = backend.channel(target)?;
    if chan.batch_enabled() {
        let offload = trace::current_offload();
        loop {
            match chan.stage(key, payload, offload, backend.host_clock().now()) {
                Stage::Staged {
                    seq,
                    flush: now,
                    slo,
                } => {
                    if now {
                        if slo {
                            // The accumulator aged past `slo_micros`:
                            // this flush is the latency bound firing,
                            // not a watermark.
                            let t = backend.host_clock().now();
                            backend.metrics().on_slo_flush();
                            backend.metrics().health().record(
                                target.0,
                                aurora_sim_core::HealthEventKind::SloFlush,
                                offload,
                                t.as_ps(),
                            );
                        }
                        // A send failure here is parked on the member
                        // futures by `fail_batch`; the post itself
                        // succeeded.
                        let _ = flush(backend, target);
                    }
                    return Ok(seq);
                }
                Stage::FlushFirst => {
                    let _ = flush(backend, target);
                }
                Stage::TooBig => {
                    // Flush what is staged (order must hold), then post
                    // this message as a plain frame below.
                    let _ = flush(backend, target);
                    break;
                }
                Stage::Shutdown => return Err(OffloadError::Shutdown),
                Stage::Lost(e) => return Err(e),
            }
        }
    }
    post_inner(backend, target, key, payload, MsgKind::Offload)
}

/// Post a control message (shutdown). Control frames bypass the
/// shutdown gate — they are how shutdown is delivered — but share the
/// reservation path so slot discipline holds to the very last frame.
/// Staged messages are flushed first so nothing outruns them.
pub fn post_control<B: CommBackend + ?Sized>(
    backend: &B,
    target: NodeId,
) -> Result<u64, OffloadError> {
    flush(backend, target)?;
    post_inner(backend, target, HandlerKey(0), &[], MsgKind::Control)
}

fn post_inner<B: CommBackend + ?Sized>(
    backend: &B,
    target: NodeId,
    key: HandlerKey,
    payload: &[u8],
    kind: MsgKind,
) -> Result<u64, OffloadError> {
    let chan = backend.channel(target)?;
    if payload.len() > chan.max_msg_bytes() {
        return Err(OffloadError::Backend(format!(
            "message of {} bytes exceeds the protocol's {}-byte slots; transfer bulk data with put/get",
            payload.len(),
            chan.max_msg_bytes()
        )));
    }
    let control = matches!(kind, MsgKind::Control);
    let offload = trace::current_offload();
    let mut backoff = Backoff::new();
    let wire_bytes = (HEADER_BYTES + payload.len()) as u64;
    let res = loop {
        match chan.try_reserve(control, offload, backend.host_clock().now(), wire_bytes) {
            Reserve::Reserved(r) => break r,
            Reserve::Shutdown => return Err(OffloadError::Shutdown),
            Reserve::Lost(e) => return Err(e),
            Reserve::Full => {
                // All slots in flight: sweep completions to free some.
                // A dead target errors its pending entries out here, so
                // this loop cannot spin forever.
                sweep(backend, target)?;
                backoff.snooze();
            }
        }
    };
    let header = MsgHeader {
        handler_key: key,
        payload_len: payload.len() as u32,
        kind,
        reply_slot: res.send_slot as u16,
        corr: offload,
        seq: res.seq,
    };
    // Assemble the full wire frame in a pooled buffer: the transport
    // writes it verbatim, and `note_sent` keeps the same buffer for
    // recovery re-sends instead of copying.
    let mut frame = chan.pool().checkout();
    frame.extend_from_slice(&header.encode());
    frame.extend_from_slice(payload);
    if let Err(e) = backend.send_frame(target, &res, &header, &frame) {
        chan.cancel(res.seq);
        return Err(e);
    }
    if matches!(kind, MsgKind::Offload) {
        backend.metrics().on_frame(1);
    }
    chan.note_sent(res.seq, &header, frame);
    Ok(res.seq)
}

/// Put the staged batch envelope (if any) on the wire. No-op with
/// batching off. Blocks (sweeping completions) while the slot rings are
/// full; a transport failure fails every member via
/// [`ChannelCore::fail_batch`] and surfaces here too.
pub fn flush<B: CommBackend + ?Sized>(backend: &B, target: NodeId) -> Result<(), OffloadError> {
    let chan = backend.channel(target)?;
    if !chan.batch_enabled() {
        return Ok(());
    }
    let mut backoff = Backoff::new();
    loop {
        match chan.take_flush() {
            FlushPrep::Empty => return Ok(()),
            FlushPrep::Full => {
                // Eviction empties the accumulator, so a dead target
                // exits through `Empty` rather than spinning here.
                sweep(backend, target)?;
                backoff.snooze();
            }
            FlushPrep::Ready(f) => return send_envelope(backend, target, chan, f),
        }
    }
}

/// Put one claimed envelope on the wire: transport write, flush
/// metrics/trace, recovery bookkeeping — then one adaptive-controller
/// accounting step (which, every [`super::adaptive::TICK_FLUSHES`]
/// flushes, reads the cumulative flush-latency histogram and may retune
/// the channel's watermarks; decisions surface as `aurora_batch_*`
/// counters and health events).
fn send_envelope<B: CommBackend + ?Sized>(
    backend: &B,
    target: NodeId,
    chan: &ChannelCore,
    f: FlushFrame,
) -> Result<(), OffloadError> {
    let t0 = backend.host_clock().now();
    if let Err(e) = backend.send_frame(target, &f.res, &f.header, &f.frame) {
        chan.fail_batch(f.res.seq, e.clone());
        return Err(e);
    }
    let now = backend.host_clock().now();
    let metrics = backend.metrics();
    metrics.on_frame(f.msgs as u64);
    // Flush latency: first member staged → envelope on the
    // transport, in virtual time.
    metrics.on_flush(now.saturating_sub(f.posted_at));
    trace::record("chan.batch_flush", f.msgs as u64, t0, now);
    chan.note_sent(f.res.seq, &f.header, f.frame);
    if let Some(d) = chan.adaptive_tick(f.msgs, || metrics.flush_hist_buckets()) {
        let kind = if matches!(d.decision, Decision::Widen) {
            metrics.on_batch_widen();
            aurora_sim_core::HealthEventKind::BatchWiden
        } else {
            metrics.on_batch_narrow();
            aurora_sim_core::HealthEventKind::BatchNarrow
        };
        metrics
            .health()
            .record(target.0, kind, trace::current_offload(), now.as_ps());
    }
    Ok(())
}

/// Flush staged messages, then sweep completion flags once — the verb
/// every blocking wait uses. Flushing first matters: a future spinning
/// on a staged-but-unflushed message would otherwise wait on a frame
/// that never left the host. Returns how many offloads completed.
pub fn drain<B: CommBackend + ?Sized>(backend: &B, target: NodeId) -> Result<usize, OffloadError> {
    flush(backend, target)?;
    sweep(backend, target)
}

/// Sweep the completion flags of *every* in-flight offload on `target`
/// and move the ready ones into the completion queue — one poll pass
/// retires any number of completions (O(completions) host work, not
/// O(in-flight · polls)). Push transports have nothing to sweep; their
/// receiver threads deposit directly. Returns how many offloads
/// completed (transport errors count: they complete their futures with
/// the error).
///
/// When a recovery policy is armed on the channel, a cold flag also
/// counts one *miss* against its offload: past the deadline the stored
/// frame is re-sent into the same slots (`chan.retry` span), and once
/// the retry budget is exhausted the offload fails with
/// [`OffloadError::Timeout`] (`chan.timeout` span) **and the target is
/// evicted** — a definitively lost frame is a hole the target's
/// in-order slot cursor can never step over, so nothing posted after
/// it can be delivered either. A batch carrier times out and retries as
/// one unit: its timeout fails every member at once. A transport error
/// likewise evicts the whole target (`chan.evict` span): every
/// in-flight offload fails with the error and future posts are refused.
pub fn sweep<B: CommBackend + ?Sized>(backend: &B, target: NodeId) -> Result<usize, OffloadError> {
    use core::cell::RefCell;
    thread_local! {
        /// Snapshot scratch, reused across sweeps: blocking waits call
        /// this every backoff round and must not allocate per round.
        static SWEEP_SCRATCH: RefCell<Vec<(u64, PendingEntry)>> =
            const { RefCell::new(Vec::new()) };
    }
    SWEEP_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => sweep_with(backend, target, &mut scratch),
        // Re-entrant sweep (a poll_flags/fetch_frame hook sweeping the
        // same thread) falls back to a fresh vector.
        Err(_) => sweep_with(backend, target, &mut Vec::new()),
    })
}

fn sweep_with<B: CommBackend + ?Sized>(
    backend: &B,
    target: NodeId,
    scratch: &mut Vec<(u64, PendingEntry)>,
) -> Result<usize, OffloadError> {
    let chan = backend.channel(target)?;
    // The SLO bound on time-in-accumulator: any staged envelope older
    // than `slo_micros` of virtual time goes on the wire now, so a lone
    // small message never waits behind a filling batch just because
    // nobody else posted. With the knob unset (the default) this is a
    // lock-free field compare.
    let now = backend.host_clock().now();
    if chan.slo_flush_due(now) {
        // One attempt, no loop: `Full` (no free slots) waits for this
        // very sweep to retire completions, and the next sweep retries —
        // the trip is only recorded once the envelope actually leaves.
        // A send failure parks the error on every member via
        // `fail_batch`; the sweep itself carries on.
        if let FlushPrep::Ready(f) = chan.take_flush() {
            chan.note_slo_trip();
            backend.metrics().on_slo_flush();
            backend.metrics().health().record(
                target.0,
                aurora_sim_core::HealthEventKind::SloFlush,
                trace::current_offload(),
                now.as_ps(),
            );
            let _ = send_envelope(backend, target, chan, f);
        }
    }
    let mut completed = 0;
    chan.pending_into(scratch);
    for &(seq, entry) in scratch.iter() {
        let ready = backend.poll_flags(target, seq, &entry);
        match ready {
            Ok(None) => match chan.note_miss(seq) {
                MissVerdict::Keep => {}
                MissVerdict::Retry {
                    header,
                    frame,
                    attempt,
                } => {
                    let _scope = trace::offload_scope(OffloadId(entry.offload));
                    let t0 = backend.host_clock().now();
                    let res = Reservation {
                        seq,
                        recv_slot: entry.recv_slot,
                        send_slot: entry.send_slot,
                        attempt,
                    };
                    backend.metrics().on_resend();
                    if let Err(e) = backend.send_frame(target, &res, &header, &frame) {
                        completed += evict(backend, target, chan, e);
                        break;
                    }
                    let now = backend.host_clock().now();
                    // Retry delay: post → this re-send, the backoff
                    // distribution of the recovery policy.
                    backend
                        .metrics()
                        .on_retry_delay(now.saturating_sub(entry.posted_at));
                    backend.metrics().health().record(
                        target.0,
                        aurora_sim_core::HealthEventKind::Retry,
                        entry.offload,
                        now.as_ps(),
                    );
                    trace::record("chan.retry", (frame.len() - HEADER_BYTES) as u64, t0, now);
                }
                MissVerdict::TimedOut => {
                    let Some(entry) = chan.take_pending(seq) else {
                        continue;
                    };
                    let _scope = trace::offload_scope(OffloadId(entry.offload));
                    let now = backend.host_clock().now();
                    trace::record("chan.timeout", 0, now, now);
                    backend.metrics().on_timeout();
                    backend.metrics().health().record(
                        target.0,
                        aurora_sim_core::HealthEventKind::Timeout,
                        entry.offload,
                        now.as_ps(),
                    );
                    chan.finish(seq, &entry, Err(OffloadError::Timeout));
                    completed += 1;
                    // A frame lost beyond its retry budget leaves a
                    // permanent hole in the slot rings: targets consume
                    // recv slots in order and can never advance past a
                    // slot whose frame will not be re-sent. The target
                    // is unreachable from here on — evict it so the
                    // remaining in-flight offloads fail immediately
                    // instead of timing out one by one.
                    completed += evict(backend, target, chan, OffloadError::TargetLost(target));
                    break;
                }
            },
            Ok(Some(token)) => {
                // Re-check under the lock: another thread may have
                // claimed this completion between snapshot and now.
                let Some(entry) = chan.take_pending(seq) else {
                    continue;
                };
                // The fetch belongs to the span tree of the offload it
                // completes, not whichever future's poll triggered it.
                let _scope = trace::offload_scope(OffloadId(entry.offload));
                let result = backend.fetch_frame(target, seq, &entry, token);
                chan.finish(seq, &entry, result);
                completed += 1;
            }
            Err(e) => {
                // A dead transport fails every in-flight offload at
                // once: eviction parks the error for each future and
                // frees the slots so posting paths stop blocking.
                completed += evict(backend, target, chan, e);
                break;
            }
        }
    }
    Ok(completed)
}

/// Evict `target` behind `chan`: fail every in-flight offload with
/// `err`, latch the channel so future posts are refused, record the
/// `chan.evict` span and the health `Eviction` event. Idempotent;
/// returns how many offloads it failed.
pub fn evict<B: CommBackend + ?Sized>(
    backend: &B,
    target: NodeId,
    chan: &ChannelCore,
    err: OffloadError,
) -> usize {
    let Some(failed) = chan.evict(err) else {
        return 0;
    };
    let now = backend.host_clock().now();
    trace::record("chan.evict", failed as u64, now, now);
    backend.metrics().on_evict();
    backend.metrics().health().record(
        target.0,
        aurora_sim_core::HealthEventKind::Eviction,
        trace::current_offload(),
        now.as_ps(),
    );
    failed
}

/// One liveness probe round trip against `target`, with full
/// bookkeeping: [`CommBackend::probe`] supplies the transport evidence
/// (and records the `Probe` health event on success), this wrapper adds
/// the metric counters and, on failure, the
/// [`aurora_sim_core::HealthEventKind::ProbeMiss`] event — the earliest
/// degradation signal the health registry sees, arriving before any
/// offload traffic fails on the link. The pool prober calls this on its
/// cadence; it is also safe to call ad hoc.
pub fn probe<B: CommBackend + ?Sized>(backend: &B, target: NodeId) -> Result<(), OffloadError> {
    match backend.probe(target) {
        Ok(()) => {
            backend.metrics().on_probe();
            Ok(())
        }
        Err(e) => {
            backend.metrics().on_probe_miss();
            backend.metrics().health().record(
                target.0,
                aurora_sim_core::HealthEventKind::ProbeMiss,
                trace::current_offload(),
                backend.host_clock().now().as_ps(),
            );
            Err(e)
        }
    }
}

/// Poll for the result of offload `seq`: claim it if already parked,
/// otherwise flush + sweep once and try again. `Ok(None)` while the
/// offload is still running. The returned frame is still
/// `frame_result`-framed (see [`crate::target_loop::unframe_result_ref`])
/// and its buffer returns to the channel's pool on drop — callers
/// decode in place instead of copying.
pub fn try_result<B: CommBackend + ?Sized>(
    backend: &B,
    target: NodeId,
    seq: u64,
) -> Result<Option<PooledFrame>, OffloadError> {
    let chan = backend.channel(target)?;
    if let Some(done) = chan.take_completed(seq) {
        return done.map(Some);
    }
    drain(backend, target)?;
    match chan.take_completed(seq) {
        Some(done) => done.map(Some),
        None => Ok(None),
    }
}
