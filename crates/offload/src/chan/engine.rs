//! The protocol engine: drives a [`ChannelCore`] against a backend's
//! transport verbs.
//!
//! Every host-side transition an offload goes through — reserve, frame,
//! post, flag sweep, fetch, unframe, claim — happens in these four
//! functions, for all transports. Backends contribute only
//! [`CommBackend::send_frame`] / [`CommBackend::poll_flags`] /
//! [`CommBackend::fetch_frame`] (or a receiver thread that calls
//! [`super::ChannelCore::deposit`]).

use super::core::{ChannelCore, Reservation, Reserve};
use super::recovery::MissVerdict;
use crate::backend::CommBackend;
use crate::target_loop::unframe_result;
use crate::types::NodeId;
use crate::OffloadError;
use aurora_sim_core::trace::{self, OffloadId};
use ham::registry::HandlerKey;
use ham::wire::{MsgHeader, MsgKind};

/// Post an offload message: reserve slots (draining completions while
/// the rings are full), frame, and hand to the transport. Returns the
/// sequence number the result will be claimable under.
pub fn post<B: CommBackend + ?Sized>(
    backend: &B,
    target: NodeId,
    key: HandlerKey,
    payload: &[u8],
) -> Result<u64, OffloadError> {
    post_inner(backend, target, key, payload, MsgKind::Offload)
}

/// Post a control message (shutdown). Control frames bypass the
/// shutdown gate — they are how shutdown is delivered — but share the
/// reservation path so slot discipline holds to the very last frame.
pub fn post_control<B: CommBackend + ?Sized>(
    backend: &B,
    target: NodeId,
) -> Result<u64, OffloadError> {
    post_inner(backend, target, HandlerKey(0), &[], MsgKind::Control)
}

fn post_inner<B: CommBackend + ?Sized>(
    backend: &B,
    target: NodeId,
    key: HandlerKey,
    payload: &[u8],
    kind: MsgKind,
) -> Result<u64, OffloadError> {
    let chan = backend.channel(target)?;
    if payload.len() > chan.max_msg_bytes() {
        return Err(OffloadError::Backend(format!(
            "message of {} bytes exceeds the protocol's {}-byte slots; transfer bulk data with put/get",
            payload.len(),
            chan.max_msg_bytes()
        )));
    }
    let control = matches!(kind, MsgKind::Control);
    let offload = trace::current_offload();
    let res = loop {
        match chan.try_reserve(control, offload, backend.host_clock().now()) {
            Reserve::Reserved(r) => break r,
            Reserve::Shutdown => return Err(OffloadError::Shutdown),
            Reserve::Lost(e) => return Err(e),
            Reserve::Full => {
                // All slots in flight: sweep completions to free some.
                // A dead target errors its pending entries out here, so
                // this loop cannot spin forever.
                drain(backend, target)?;
                std::thread::yield_now();
            }
        }
    };
    let header = MsgHeader {
        handler_key: key,
        payload_len: payload.len() as u32,
        kind,
        reply_slot: res.send_slot as u16,
        corr: offload,
        seq: res.seq,
    };
    if let Err(e) = backend.send_frame(target, &res, &header, payload) {
        chan.cancel(res.seq);
        return Err(e);
    }
    chan.note_sent(res.seq, &header, payload);
    Ok(res.seq)
}

/// Sweep the completion flags of *every* in-flight offload on `target`
/// and move the ready ones into the completion queue — one poll pass
/// retires any number of completions (O(completions) host work, not
/// O(in-flight · polls)). Push transports have nothing to sweep; their
/// receiver threads deposit directly. Returns how many offloads
/// completed (transport errors count: they complete their futures with
/// the error).
///
/// When a recovery policy is armed on the channel, a cold flag also
/// counts one *miss* against its offload: past the deadline the stored
/// frame is re-sent into the same slots (`chan.retry` span), and once
/// the retry budget is exhausted the offload fails with
/// [`OffloadError::Timeout`] (`chan.timeout` span) **and the target is
/// evicted** — a definitively lost frame is a hole the target's
/// in-order slot cursor can never step over, so nothing posted after
/// it can be delivered either. A transport error likewise evicts the
/// whole target (`chan.evict` span): every in-flight offload fails
/// with the error and future posts are refused.
pub fn drain<B: CommBackend + ?Sized>(backend: &B, target: NodeId) -> Result<usize, OffloadError> {
    let chan = backend.channel(target)?;
    let mut completed = 0;
    for (seq, entry) in chan.pending_snapshot() {
        let ready = backend.poll_flags(target, seq, &entry);
        match ready {
            Ok(None) => match chan.note_miss(seq) {
                MissVerdict::Keep => {}
                MissVerdict::Retry {
                    header,
                    payload,
                    attempt,
                } => {
                    let _scope = trace::offload_scope(OffloadId(entry.offload));
                    let t0 = backend.host_clock().now();
                    let res = Reservation {
                        seq,
                        recv_slot: entry.recv_slot,
                        send_slot: entry.send_slot,
                        attempt,
                    };
                    backend.metrics().on_resend();
                    if let Err(e) = backend.send_frame(target, &res, &header, &payload) {
                        completed += evict(backend, chan, e);
                        break;
                    }
                    trace::record(
                        "chan.retry",
                        payload.len() as u64,
                        t0,
                        backend.host_clock().now(),
                    );
                }
                MissVerdict::TimedOut => {
                    let Some(entry) = chan.take_pending(seq) else {
                        continue;
                    };
                    let _scope = trace::offload_scope(OffloadId(entry.offload));
                    let now = backend.host_clock().now();
                    trace::record("chan.timeout", 0, now, now);
                    backend.metrics().on_timeout();
                    chan.finish(seq, &entry, Err(OffloadError::Timeout));
                    completed += 1;
                    // A frame lost beyond its retry budget leaves a
                    // permanent hole in the slot rings: targets consume
                    // recv slots in order and can never advance past a
                    // slot whose frame will not be re-sent. The target
                    // is unreachable from here on — evict it so the
                    // remaining in-flight offloads fail immediately
                    // instead of timing out one by one.
                    completed += evict(backend, chan, OffloadError::TargetLost(target));
                    break;
                }
            },
            Ok(Some(token)) => {
                // Re-check under the lock: another thread may have
                // claimed this completion between snapshot and now.
                let Some(entry) = chan.take_pending(seq) else {
                    continue;
                };
                // The fetch belongs to the span tree of the offload it
                // completes, not whichever future's poll triggered it.
                let _scope = trace::offload_scope(OffloadId(entry.offload));
                let result = backend.fetch_frame(target, seq, &entry, token);
                chan.finish(seq, &entry, result);
                completed += 1;
            }
            Err(e) => {
                // A dead transport fails every in-flight offload at
                // once: eviction parks the error for each future and
                // frees the slots so posting paths stop blocking.
                completed += evict(backend, chan, e);
                break;
            }
        }
    }
    Ok(completed)
}

/// Evict the target behind `chan`: fail every in-flight offload with
/// `err`, latch the channel so future posts are refused, and record the
/// `chan.evict` span. Idempotent; returns how many offloads it failed.
pub fn evict<B: CommBackend + ?Sized>(backend: &B, chan: &ChannelCore, err: OffloadError) -> usize {
    let Some(failed) = chan.evict(err) else {
        return 0;
    };
    let now = backend.host_clock().now();
    trace::record("chan.evict", failed as u64, now, now);
    backend.metrics().on_evict();
    failed
}

/// Poll for the result of offload `seq`: claim it if already parked,
/// otherwise sweep the flags once and try again. `Ok(None)` while the
/// offload is still running. Result frames are unframed here — an
/// error frame (a handler that panicked on the target) surfaces as
/// `Err(Backend(..))`.
pub fn try_result<B: CommBackend + ?Sized>(
    backend: &B,
    target: NodeId,
    seq: u64,
) -> Result<Option<Vec<u8>>, OffloadError> {
    let chan = backend.channel(target)?;
    if let Some(done) = chan.take_completed(seq) {
        return settle(done);
    }
    drain(backend, target)?;
    match chan.take_completed(seq) {
        Some(done) => settle(done),
        None => Ok(None),
    }
}

/// Unwrap a parked completion: unframe result frames, pass transport
/// errors through.
fn settle(done: Result<Vec<u8>, OffloadError>) -> Result<Option<Vec<u8>>, OffloadError> {
    match done {
        Ok(frame) => unframe_result(&frame)
            .map(Some)
            .map_err(OffloadError::Backend),
        Err(e) => Err(e),
    }
}
