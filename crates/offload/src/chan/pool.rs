//! Pooled frame buffers: the allocation-free wire path.
//!
//! Every message the engine sends or settles used to pass through a
//! fresh `Vec<u8>` — codec encode, frame assembly, `note_sent`'s stored
//! copy, result unframing. A [`FramePool`] recycles those buffers: a
//! [`PooledFrame`] checked out of the pool keeps its capacity when it
//! returns on drop, so a steady-state post → complete cycle performs no
//! heap allocations once the pool (and the per-channel hash maps) are
//! warm. See `tests/alloc_steady_state.rs` for the counting-allocator
//! proof.

use parking_lot::Mutex;
use std::sync::Arc;

/// How many idle buffers a pool retains; checkouts beyond this are
/// served by plain allocation and returns beyond it are dropped. Far
/// above any channel's slot count, so bounded protocols never spill.
const POOL_CAP: usize = 64;

/// A bounded freelist of reusable frame buffers.
#[derive(Debug, Default)]
pub struct FramePool {
    free: Mutex<Vec<Vec<u8>>>,
}

impl FramePool {
    /// A fresh, empty pool.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Check out an empty buffer (recycled capacity when available).
    pub fn checkout(self: &Arc<Self>) -> PooledFrame {
        let buf = self.free.lock().pop().unwrap_or_default();
        PooledFrame {
            buf,
            pool: Some(Arc::clone(self)),
        }
    }

    /// Wrap a foreign buffer (e.g. one a receiver thread built) so it
    /// joins the pool when dropped.
    pub fn adopt(self: &Arc<Self>, buf: Vec<u8>) -> PooledFrame {
        PooledFrame {
            buf,
            pool: Some(Arc::clone(self)),
        }
    }

    /// Idle buffers currently held (tests).
    pub fn idle(&self) -> usize {
        self.free.lock().len()
    }
}

/// A byte buffer owned by a [`FramePool`]; dereferences to `Vec<u8>`
/// and returns to the pool (cleared, capacity kept) on drop.
#[derive(Debug, Default)]
pub struct PooledFrame {
    buf: Vec<u8>,
    pool: Option<Arc<FramePool>>,
}

impl PooledFrame {
    /// A frame with no pool: dropped normally. For tests and cold paths.
    pub fn detached(buf: Vec<u8>) -> Self {
        Self { buf, pool: None }
    }

    /// Take the buffer out, detaching it from the pool.
    pub fn into_vec(mut self) -> Vec<u8> {
        self.pool = None;
        core::mem::take(&mut self.buf)
    }
}

impl core::ops::Deref for PooledFrame {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.buf
    }
}

impl core::ops::DerefMut for PooledFrame {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

impl Drop for PooledFrame {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            let mut free = pool.free.lock();
            if free.len() < POOL_CAP {
                self.buf.clear();
                free.push(core::mem::take(&mut self.buf));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_recycles_capacity() {
        let pool = FramePool::new();
        let mut f = pool.checkout();
        f.extend_from_slice(&[1; 512]);
        let cap = f.capacity();
        drop(f);
        assert_eq!(pool.idle(), 1);
        let f2 = pool.checkout();
        assert!(f2.is_empty());
        assert_eq!(f2.capacity(), cap, "capacity survives the round trip");
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn detached_and_into_vec_skip_the_pool() {
        let pool = FramePool::new();
        drop(PooledFrame::detached(vec![1, 2, 3]));
        assert_eq!(pool.idle(), 0);
        let f = pool.checkout();
        let v = f.into_vec();
        assert!(v.is_empty());
        assert_eq!(pool.idle(), 0, "into_vec detaches");
    }

    #[test]
    fn adopt_joins_the_pool() {
        let pool = FramePool::new();
        drop(pool.adopt(vec![9; 64]));
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn pool_is_bounded() {
        let pool = FramePool::new();
        let frames: Vec<_> = (0..POOL_CAP + 8).map(|_| pool.checkout()).collect();
        drop(frames);
        assert_eq!(pool.idle(), POOL_CAP);
    }
}
