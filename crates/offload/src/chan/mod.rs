//! The shared **channel core**: one host-side protocol engine for every
//! transport.
//!
//! The paper's layering (Fig. 1) puts a single HAM-Offload runtime over
//! interchangeable transports — the RPC machinery itself is
//! transport-agnostic. This module family is that machinery, extracted
//! so each backend implements only *transport verbs* (send a frame, poll
//! flags, fetch or deposit a result frame) while everything a channel
//! has to get right lives here exactly once:
//!
//! * slot accounting — [`SlotRing`] hands out receive/send slots with
//!   the discipline each side expects (strict round-robin for the
//!   target-polled receive array, first-free for results);
//! * sequence management and in-flight bookkeeping — [`PendingTable`]
//!   maps a sequence number to its slots, post time and telemetry id;
//! * completion buffering — [`CompletionQueue`] holds finished result
//!   frames (or transport errors) until the owning future claims them,
//!   so one flag sweep drains *all* ready completions instead of
//!   checking a single slot;
//! * the protocol state machine — [`ChannelCore`] ties the three
//!   together under one lock, and [`engine`] drives it against the
//!   [`crate::CommBackend`] transport verbs;
//! * small-message batching — [`batch`] defines the `MsgKind::Batch`
//!   envelope and [`BatchConfig`] its flush watermarks, so deep
//!   pipelines pay one transport transaction per *batch* instead of per
//!   message;
//! * adaptive batching — [`adaptive`] closes the loop on those
//!   watermarks per channel from the observed flush-latency histogram,
//!   under the `BatchConfig::slo_micros` time-in-accumulator bound;
//! * buffer recycling — [`FramePool`] keeps the post → complete hot
//!   path allocation-free by handing wire frames out of a per-channel
//!   freelist.
//!
//! Slot-layout constants shared by the Aurora transports
//! ([`ProtocolConfig`], [`SLOT_META`]) also live here, so `ham-backend-dma`
//! no longer reaches into a sibling backend for them.
//!
//! See `docs/channel-core.md` for the state machine diagram and a guide
//! to writing a new backend on top of this module.

pub mod adaptive;
pub mod backoff;
pub mod batch;
pub mod config;
pub mod core;
pub mod engine;
pub mod pending;
pub mod pool;
pub mod queue;
pub mod recovery;
pub mod ring;

pub use self::core::{
    ChannelCore, FlushFrame, FlushPrep, ReplayFrame, Reservation, Reserve, ResumeReport, Stage,
    DEFAULT_PUSH_CREDITS,
};
pub use adaptive::{AdaptiveDecision, AdaptivePolicy, Decision};
pub use backoff::Backoff;
pub use batch::BatchConfig;
pub use config::{ProtocolConfig, SLOT_META};
pub use pending::{PendingEntry, PendingTable};
pub use pool::{FramePool, PooledFrame};
pub use queue::CompletionQueue;
pub use recovery::{MissVerdict, RecoveryPolicy};
pub use ring::SlotRing;
