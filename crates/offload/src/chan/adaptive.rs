//! The adaptive batch-watermark controller.
//!
//! Static [`BatchConfig`](super::BatchConfig) watermarks force a choice:
//! batch deep and starve the occasional latency-sensitive probe inside a
//! filling accumulator, or batch shallow and forfeit the per-frame
//! amortization the paper's offload win is built on. This module closes
//! the loop per channel:
//!
//! * the **effective** `max_msgs`/byte watermarks float between a floor
//!   of 1 and the configured ceiling, doubling when flushes close full
//!   (depth pressure — the pipeline can absorb a wider envelope) and
//!   halving when the latency SLO trips or occupancy collapses (the
//!   traffic cannot fill the envelope in time);
//! * decisions are a **pure function of virtual-time state** — the
//!   flush-latency histogram delta since the last tick plus counters
//!   accumulated under the channel lock. No wall clocks, no randomness:
//!   a replayed fault timeline reproduces the exact same widen/narrow
//!   sequence, which is what keeps the cross-backend bit-identity and
//!   calibration suites valid with the controller armed.
//!
//! The state machine is three self-loops on the watermark value:
//!
//! ```text
//!            widen (×2, cap ceiling)
//!          ┌────────────────────────┐
//!          ▼                        │ occupancy ≥ 7/8·wm
//!   [wm = ceiling] … [wm] … [wm = 1]       and flush p99 ≤ SLO/2
//!          │                        ▲
//!          └────────────────────────┘
//!            narrow (÷2, floor 1): SLO trip since last tick,
//!            or occupancy < wm/4
//! ```
//!
//! Everything here is integer arithmetic on histogram buckets so a
//! controller tick allocates nothing and costs a bounded scan of
//! [`HISTOGRAM_BUCKETS`] words.

use aurora_sim_core::HISTOGRAM_BUCKETS;

use super::batch::BatchConfig;

/// How many successful flushes between controller ticks. Reacting on
/// every flush would chase noise; a small window keeps convergence
/// within tens of envelopes while the histogram delta stays meaningful.
pub const TICK_FLUSHES: u64 = 4;

/// Tuning bounds and cadence derived from a [`BatchConfig`] ceiling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdaptivePolicy {
    /// Narrowing never drops the watermark below this (always ≥ 1).
    pub floor_msgs: usize,
    /// Widening never raises the watermark above this (the configured
    /// `BatchConfig::max_msgs`).
    pub ceil_msgs: usize,
    /// Flushes per controller tick.
    pub tick_flushes: u64,
    /// The staged-age bound in picoseconds (0 = unbounded).
    pub slo_ps: u64,
}

impl AdaptivePolicy {
    /// The policy a [`BatchConfig`] with `adaptive` set implies.
    pub fn from_batch(batch: &BatchConfig) -> Self {
        Self {
            floor_msgs: 1,
            ceil_msgs: batch.max_msgs.max(1),
            tick_flushes: TICK_FLUSHES,
            slo_ps: batch.slo_micros.saturating_mul(1_000_000),
        }
    }
}

/// One controller verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Double the watermark (capped at the ceiling).
    Widen,
    /// Halve the watermark (floored at `floor_msgs`).
    Narrow,
    /// Leave it alone.
    Hold,
}

/// The virtual-time observations one tick decides from.
#[derive(Clone, Copy, Debug)]
pub struct TickInputs {
    /// Mean staged messages per flush over the window, fixed-point ×16
    /// (so 7/8 of a watermark compares without floats).
    pub mean_occupancy_x16: u64,
    /// p99 flush latency (time from first stage to wire) over the
    /// window, picoseconds — the bucket floor of the histogram delta.
    pub flush_p99_ps: u64,
    /// SLO-triggered flushes observed since the last tick.
    pub slo_flushes: u64,
}

/// The pure decision function. Deterministic: same inputs, same verdict.
pub fn decide(watermark: usize, policy: &AdaptivePolicy, inputs: &TickInputs) -> Decision {
    let wm = watermark as u64;
    // Latency pressure: the accumulator aged out. The traffic cannot
    // fill this watermark inside its SLO — halve so envelopes close on
    // count before they close on age.
    if inputs.slo_flushes > 0 {
        return if watermark > policy.floor_msgs {
            Decision::Narrow
        } else {
            Decision::Hold
        };
    }
    // Depth pressure: flushes close essentially full (≥ 7/8 of the
    // watermark) and the envelope fill time sits comfortably inside the
    // SLO even if it doubled — widen to amortize more messages per
    // frame.
    if inputs.mean_occupancy_x16 >= wm * 14 {
        let headroom = policy.slo_ps == 0 || inputs.flush_p99_ps.saturating_mul(2) <= policy.slo_ps;
        return if headroom && watermark < policy.ceil_msgs {
            Decision::Widen
        } else {
            Decision::Hold
        };
    }
    // Sparse traffic: the watermark holds far more than ever arrives
    // (< 1/4 occupancy) — narrow so a stray message stops waiting on a
    // count it will never reach.
    if inputs.mean_occupancy_x16 * 4 < wm * 16 && watermark > policy.floor_msgs {
        return Decision::Narrow;
    }
    Decision::Hold
}

/// Apply a [`Decision`] to a watermark under a policy.
pub fn apply(watermark: usize, policy: &AdaptivePolicy, decision: Decision) -> usize {
    match decision {
        Decision::Widen => (watermark * 2).min(policy.ceil_msgs),
        Decision::Narrow => (watermark / 2).max(policy.floor_msgs),
        Decision::Hold => watermark,
    }
}

/// The p99 floor (in ps) of a histogram delta: the lower bound of the
/// log₂ bucket holding the 99th percentile sample. Zero when the delta
/// is empty.
pub fn p99_floor_ps(delta: &[u64; HISTOGRAM_BUCKETS]) -> u64 {
    let total: u64 = delta.iter().sum();
    if total == 0 {
        return 0;
    }
    // Samples allowed *above* the p99 mark: 1% of the window, rounded
    // down — walk from the top bucket until we have passed that many.
    let above = total / 100;
    let mut seen = 0u64;
    for (i, &n) in delta.iter().enumerate().rev() {
        seen += n;
        if seen > above {
            return if i == 0 { 0 } else { 1u64 << i };
        }
    }
    0
}

/// A controller decision surfaced to the engine so it can emit metrics
/// and health events outside the channel lock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdaptiveDecision {
    /// What the tick decided.
    pub decision: Decision,
    /// The watermark after applying it.
    pub watermark: usize,
}

/// Per-channel controller state. Lives inside the channel's existing
/// mutex — `stage()` and the flush bookkeeping already hold it, so no
/// extra synchronization (or allocation) is needed.
#[derive(Debug)]
pub(crate) struct AdaptiveState {
    policy: AdaptivePolicy,
    watermark_msgs: usize,
    flushes_since_tick: u64,
    msgs_since_tick: u64,
    slo_since_tick: u64,
    prev_flush_hist: [u64; HISTOGRAM_BUCKETS],
}

impl AdaptiveState {
    /// Arm the controller for a batch ceiling. Starts wide: the first
    /// waves keep the full static batching win and the SLO bound caps
    /// the tail while the controller converges downward if it must.
    pub(crate) fn new(policy: AdaptivePolicy) -> Self {
        Self {
            policy,
            watermark_msgs: policy.ceil_msgs,
            flushes_since_tick: 0,
            msgs_since_tick: 0,
            slo_since_tick: 0,
            prev_flush_hist: [0; HISTOGRAM_BUCKETS],
        }
    }

    /// The current effective watermarks given the static byte cap: the
    /// message count, and a byte cap scaled proportionally so narrowing
    /// tightens both trips. Scaling only ever *lowers* the byte trip,
    /// which flushes earlier — it can never admit an envelope the
    /// static config would reject.
    pub(crate) fn effective(&self, static_cap: usize) -> (usize, usize) {
        // u128: transports with no byte watermark pass a cap near
        // `usize::MAX`, which a plain multiply would overflow.
        let scaled = (static_cap as u128 * self.watermark_msgs as u128
            / self.policy.ceil_msgs.max(1) as u128) as usize;
        let bytes = scaled.max(static_cap / 8).max(64).min(static_cap);
        (self.watermark_msgs, bytes)
    }

    /// Record an SLO-triggered flush (stage-time or sweep-time).
    pub(crate) fn note_slo(&mut self) {
        self.slo_since_tick += 1;
    }

    /// Account a successful flush of `msgs` members; `true` when the
    /// tick window is full and [`Self::tick`] should run.
    pub(crate) fn note_flush(&mut self, msgs: usize) -> bool {
        self.flushes_since_tick += 1;
        self.msgs_since_tick += msgs as u64;
        self.flushes_since_tick >= self.policy.tick_flushes
    }

    /// Run one controller tick against the current cumulative flush
    /// histogram. Resets the window. Returns the verdict (including
    /// `Hold`) so the engine can decide what to surface.
    pub(crate) fn tick(&mut self, flush_hist: &[u64; HISTOGRAM_BUCKETS]) -> AdaptiveDecision {
        let mut delta = [0u64; HISTOGRAM_BUCKETS];
        for (d, (cur, prev)) in delta
            .iter_mut()
            .zip(flush_hist.iter().zip(self.prev_flush_hist.iter()))
        {
            *d = cur.saturating_sub(*prev);
        }
        let inputs = TickInputs {
            mean_occupancy_x16: self.msgs_since_tick * 16 / self.flushes_since_tick.max(1),
            flush_p99_ps: p99_floor_ps(&delta),
            slo_flushes: self.slo_since_tick,
        };
        let decision = decide(self.watermark_msgs, &self.policy, &inputs);
        self.watermark_msgs = apply(self.watermark_msgs, &self.policy, decision);
        self.prev_flush_hist = *flush_hist;
        self.flushes_since_tick = 0;
        self.msgs_since_tick = 0;
        self.slo_since_tick = 0;
        AdaptiveDecision {
            decision,
            watermark: self.watermark_msgs,
        }
    }

    /// The current effective message watermark.
    pub(crate) fn watermark(&self) -> usize {
        self.watermark_msgs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(ceil: usize, slo_us: u64) -> AdaptivePolicy {
        AdaptivePolicy {
            floor_msgs: 1,
            ceil_msgs: ceil,
            tick_flushes: TICK_FLUSHES,
            slo_ps: slo_us * 1_000_000,
        }
    }

    fn inputs(occ_x16: u64, p99_ps: u64, slo: u64) -> TickInputs {
        TickInputs {
            mean_occupancy_x16: occ_x16,
            flush_p99_ps: p99_ps,
            slo_flushes: slo,
        }
    }

    #[test]
    fn slo_trips_always_narrow() {
        let p = policy(64, 100);
        assert_eq!(decide(64, &p, &inputs(64 * 16, 0, 1)), Decision::Narrow);
        assert_eq!(decide(2, &p, &inputs(0, 0, 3)), Decision::Narrow);
        // At the floor a trip holds rather than underflowing.
        assert_eq!(decide(1, &p, &inputs(0, 0, 1)), Decision::Hold);
    }

    #[test]
    fn full_envelopes_widen_until_ceiling_or_slo_headroom_runs_out() {
        let p = policy(64, 100);
        // Occupancy ≥ 7/8 of watermark with latency headroom → widen.
        assert_eq!(
            decide(8, &p, &inputs(7 * 16, 1_000_000, 0)),
            Decision::Widen
        );
        // At the ceiling: hold.
        assert_eq!(
            decide(64, &p, &inputs(64 * 16, 1_000_000, 0)),
            Decision::Hold
        );
        // Fill time already at half the SLO: doubling would blow it.
        assert_eq!(
            decide(8, &p, &inputs(8 * 16, 60_000_000, 0)),
            Decision::Hold
        );
        // No SLO configured → depth pressure always has headroom.
        let unbounded = policy(64, 0);
        assert_eq!(
            decide(8, &unbounded, &inputs(8 * 16, u64::MAX / 4, 0)),
            Decision::Widen
        );
    }

    #[test]
    fn sparse_traffic_narrows_and_midrange_holds() {
        let p = policy(64, 100);
        // Mean occupancy below a quarter of the watermark → narrow.
        assert_eq!(decide(16, &p, &inputs(3 * 16, 0, 0)), Decision::Narrow);
        // Healthy mid-range occupancy → hold.
        assert_eq!(decide(16, &p, &inputs(8 * 16, 0, 0)), Decision::Hold);
        // Floor never underflows.
        assert_eq!(decide(1, &p, &inputs(0, 0, 0)), Decision::Hold);
    }

    #[test]
    fn apply_respects_bounds() {
        let p = policy(24, 0);
        assert_eq!(apply(16, &p, Decision::Widen), 24);
        assert_eq!(apply(24, &p, Decision::Widen), 24);
        assert_eq!(apply(2, &p, Decision::Narrow), 1);
        assert_eq!(apply(1, &p, Decision::Narrow), 1);
        assert_eq!(apply(7, &p, Decision::Hold), 7);
    }

    #[test]
    fn p99_floor_walks_buckets_from_the_top() {
        let mut delta = [0u64; HISTOGRAM_BUCKETS];
        assert_eq!(p99_floor_ps(&delta), 0);
        // 100 samples in bucket 10, one outlier in bucket 20: the
        // outlier is the 1% tail, p99 floors at bucket 10.
        delta[10] = 100;
        delta[20] = 1;
        assert_eq!(p99_floor_ps(&delta), 1 << 10);
        // With ≤ 100 samples all in one bucket, that bucket is the p99.
        let mut one = [0u64; HISTOGRAM_BUCKETS];
        one[5] = 42;
        assert_eq!(p99_floor_ps(&one), 1 << 5);
    }

    #[test]
    fn state_ticks_deterministically_and_resets_its_window() {
        let mut st = AdaptiveState::new(policy(16, 1_000));
        assert_eq!(st.watermark(), 16);
        // Four full flushes (16 members each) → widen attempt; already
        // at the ceiling so the watermark holds.
        for _ in 0..3 {
            assert!(!st.note_flush(16));
        }
        assert!(st.note_flush(16));
        let hist = [0u64; HISTOGRAM_BUCKETS];
        let d = st.tick(&hist);
        assert_eq!(d.decision, Decision::Hold);
        assert_eq!(d.watermark, 16);
        // A window with an SLO trip narrows — and the reset means the
        // next window starts clean.
        st.note_slo();
        for _ in 0..4 {
            st.note_flush(2);
        }
        assert_eq!(st.tick(&hist).decision, Decision::Narrow);
        assert_eq!(st.watermark(), 8);
        for _ in 0..4 {
            st.note_flush(8);
        }
        // Full again at the new watermark → widen back.
        let d = st.tick(&hist);
        assert_eq!(d.decision, Decision::Widen);
        assert_eq!(d.watermark, 16);
    }

    #[test]
    fn effective_scales_bytes_with_the_watermark() {
        let mut st = AdaptiveState::new(policy(16, 0));
        assert_eq!(st.effective(4096), (16, 4096));
        st.watermark_msgs = 4;
        assert_eq!(st.effective(4096), (4, 1024));
        st.watermark_msgs = 1;
        // Floors: an eighth of the cap, never below 64, never above cap.
        assert_eq!(st.effective(4096), (1, 512));
        assert_eq!(st.effective(128), (1, 64));
        assert_eq!(st.effective(32), (1, 32));
    }
}
