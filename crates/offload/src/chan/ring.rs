//! Slot allocation disciplines for the per-target slot arrays.

/// Allocator for one slot array.
///
/// The discipline matters: the VE target loop polls *receive* slots
/// strictly in order (it checks slot `n`, then `n+1`, ...), so the host
/// must fill them in the same rotation or the target would stall on an
/// empty slot while a later one holds a message. *Send* slots carry
/// results the host harvests by flag, in any order, so first-free packs
/// them densely. Transports without slot arrays (in-process channels,
/// TCP streams) use an unbounded ring that never refuses.
#[derive(Debug)]
pub struct SlotRing {
    mode: Mode,
}

#[derive(Debug)]
enum Mode {
    /// Strict rotation: slot `next % n` is the only candidate.
    RoundRobin { busy: Vec<bool>, next: u64 },
    /// Lowest free index wins.
    FirstFree { busy: Vec<bool> },
    /// No slot array; every acquire succeeds with slot 0.
    Unbounded,
}

impl SlotRing {
    /// A ring of `n` slots handed out in strict rotation (receive
    /// arrays: the target polls them in order).
    pub fn round_robin(n: usize) -> Self {
        Self {
            mode: Mode::RoundRobin {
                busy: vec![false; n],
                next: 0,
            },
        }
    }

    /// A ring of `n` slots handed out lowest-free-first (send arrays:
    /// the host harvests results by flag, in any order).
    pub fn first_free(n: usize) -> Self {
        Self {
            mode: Mode::FirstFree {
                busy: vec![false; n],
            },
        }
    }

    /// A ring for transports without slot arrays: infinite capacity,
    /// every acquire returns slot 0, release is a no-op.
    pub fn unbounded() -> Self {
        Self {
            mode: Mode::Unbounded,
        }
    }

    /// Claim a slot, or `None` if the ring is full (for round-robin:
    /// if the *next-in-rotation* slot is still busy, even when others
    /// are free — that is the protocol's ordering constraint, not a
    /// bug).
    pub fn acquire(&mut self) -> Option<usize> {
        match &mut self.mode {
            Mode::RoundRobin { busy, next } => {
                let i = (*next % busy.len() as u64) as usize;
                if busy[i] {
                    return None;
                }
                busy[i] = true;
                *next += 1;
                Some(i)
            }
            Mode::FirstFree { busy } => {
                let i = busy.iter().position(|b| !*b)?;
                busy[i] = true;
                Some(i)
            }
            Mode::Unbounded => Some(0),
        }
    }

    /// Revert the acquire that most recently returned `i` (reservation
    /// rollback before anything hit the transport). Unlike
    /// [`Self::release`], round-robin rewinds its rotation so the slot
    /// is offered again next — the target never saw it claimed.
    pub fn unacquire(&mut self, i: usize) {
        match &mut self.mode {
            Mode::RoundRobin { busy, next } => {
                assert!(busy[i], "slot {i} unacquired while free");
                busy[i] = false;
                *next -= 1;
            }
            Mode::FirstFree { busy } => {
                assert!(busy[i], "slot {i} unacquired while free");
                busy[i] = false;
            }
            Mode::Unbounded => {}
        }
    }

    /// Return a slot to the ring.
    ///
    /// # Panics
    /// If `i` is out of range or the slot is already free (double
    /// release is a protocol bug worth failing loudly on).
    pub fn release(&mut self, i: usize) {
        match &mut self.mode {
            Mode::RoundRobin { busy, .. } | Mode::FirstFree { busy } => {
                assert!(busy[i], "slot {i} released while free");
                busy[i] = false;
            }
            Mode::Unbounded => {}
        }
    }

    /// Number of slots in the array, or `None` for unbounded rings.
    /// The scheduler derives per-target credit limits from this.
    pub fn capacity(&self) -> Option<usize> {
        match &self.mode {
            Mode::RoundRobin { busy, .. } | Mode::FirstFree { busy } => Some(busy.len()),
            Mode::Unbounded => None,
        }
    }

    /// Number of slots currently held (0 for unbounded rings).
    pub fn in_use(&self) -> usize {
        match &self.mode {
            Mode::RoundRobin { busy, .. } | Mode::FirstFree { busy } => {
                busy.iter().filter(|b| **b).count()
            }
            Mode::Unbounded => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_robin_is_strict() {
        let mut r = SlotRing::round_robin(3);
        assert_eq!(r.acquire(), Some(0));
        assert_eq!(r.acquire(), Some(1));
        r.release(0);
        // Slot 0 is free but 2 is next in rotation.
        assert_eq!(r.acquire(), Some(2));
        assert_eq!(r.acquire(), Some(0));
        // Full: next in rotation (1) is still busy.
        assert_eq!(r.acquire(), None);
        r.release(1);
        assert_eq!(r.acquire(), Some(1));
    }

    #[test]
    fn first_free_packs_low() {
        let mut r = SlotRing::first_free(3);
        assert_eq!(r.acquire(), Some(0));
        assert_eq!(r.acquire(), Some(1));
        r.release(0);
        assert_eq!(r.acquire(), Some(0));
        assert_eq!(r.acquire(), Some(2));
        assert_eq!(r.acquire(), None);
    }

    #[test]
    fn unbounded_never_refuses() {
        let mut r = SlotRing::unbounded();
        for _ in 0..100 {
            assert_eq!(r.acquire(), Some(0));
        }
        r.release(0);
        assert_eq!(r.in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "released while free")]
    fn double_release_panics() {
        let mut r = SlotRing::first_free(2);
        let s = r.acquire().unwrap();
        r.release(s);
        r.release(s);
    }

    proptest! {
        /// Whatever the interleaving, a bounded ring never hands out a
        /// slot that is already held, and round-robin hands slots out in
        /// rotation order.
        #[test]
        fn never_double_allocates(
            round_robin: bool,
            n in 1usize..8,
            ops in proptest::collection::vec(any::<bool>(), 0..64),
        ) {
            let mut ring = if round_robin {
                SlotRing::round_robin(n)
            } else {
                SlotRing::first_free(n)
            };
            let mut held: Vec<usize> = Vec::new();
            let mut last_rr: Option<usize> = None;
            for acquire in ops {
                if acquire {
                    if let Some(s) = ring.acquire() {
                        prop_assert!(!held.contains(&s), "slot {} double-allocated", s);
                        if round_robin {
                            if let Some(prev) = last_rr {
                                prop_assert_eq!(s, (prev + 1) % n, "rotation broken");
                            }
                            last_rr = Some(s);
                        }
                        held.push(s);
                    } else {
                        // Refusal is only legal when the candidate slot
                        // is genuinely unavailable.
                        if round_robin {
                            let cand = last_rr.map_or(0, |p| (p + 1) % n);
                            prop_assert!(held.contains(&cand));
                        } else {
                            prop_assert_eq!(held.len(), n);
                        }
                    }
                } else if let Some(s) = held.pop() {
                    ring.release(s);
                }
                prop_assert_eq!(ring.in_use(), held.len());
            }
        }
    }
}
