//! The in-process reference backend.
//!
//! Targets are plain threads with byte-vector memories; messages travel
//! over channels. No SX-Aurora modelling — this backend pins down the
//! *semantics* of [`crate::CommBackend`] so the protocol backends can be
//! checked against it, and gives examples/tests a fast, dependency-free
//! transport (it plays the role of the paper's most generic backend).
//!
//! It is a **push** transport in channel-core terms: the target thread
//! deposits result frames straight into the per-target
//! [`ChannelCore`]'s completion queue, and the host never polls flags.

use crate::backend::{CommBackend, RawBuffer, Registrar};
use crate::chan::pool::{FramePool, PooledFrame};
use crate::chan::{engine, BatchConfig, ChannelCore, Reservation};
use crate::target_loop::{run_target_loop, Polled, TargetChannel};
use crate::types::{DeviceType, NodeDescriptor, NodeId};
use crate::OffloadError;
use aurora_mem::RangeAllocator;
use aurora_sim_core::{BackendMetrics, Clock};
use crossbeam::channel::{unbounded, Receiver, Sender};
use ham::message::VecMemory;
use ham::wire::MsgHeader;
use ham::{Registry, RegistryBuilder};
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Process seed of the "host binary".
const HOST_SEED: u64 = 0x4841_4D00;

struct ChannelEnd {
    rx: Receiver<(MsgHeader, Vec<u8>)>,
    chan: Arc<ChannelCore>,
}

impl TargetChannel for ChannelEnd {
    fn recv(&self, pool: &Arc<FramePool>) -> Option<(MsgHeader, PooledFrame)> {
        self.rx.recv().ok().map(|(h, p)| (h, pool.adopt(p)))
    }
    fn try_recv(&self, pool: &Arc<FramePool>) -> Polled {
        use crossbeam::channel::TryRecvError;
        match self.rx.try_recv() {
            Ok((h, p)) => Polled::Msg(h, pool.adopt(p)),
            Err(TryRecvError::Empty) => Polled::Empty,
            Err(TryRecvError::Disconnected) => Polled::Closed,
        }
    }
    fn send_result(&self, _reply_slot: u16, seq: u64, payload: Vec<u8>) {
        // Owned hand-off: the target's result buffer is deposited as-is
        // (and adopted into the host-side frame pool), no copy.
        self.chan.deposit(seq, payload);
    }
}

struct Target {
    tx: Sender<(MsgHeader, Vec<u8>)>,
    chan: Arc<ChannelCore>,
    mem: Arc<VecMemory>,
    alloc: Mutex<RangeAllocator>,
    thread: Mutex<Option<JoinHandle<u64>>>,
}

/// The reference in-process backend.
pub struct LocalBackend {
    host_registry: Arc<Registry>,
    targets: Vec<Target>,
    clock: Clock,
    mem_bytes: u64,
    metrics: BackendMetrics,
}

impl LocalBackend {
    /// Default per-target memory.
    pub const DEFAULT_MEM: u64 = 16 << 20;

    /// Spawn `n` in-process targets whose kernels are registered by
    /// `registrar` (the shared "source code" of all binaries).
    pub fn spawn(
        n: u16,
        registrar: impl Fn(&mut RegistryBuilder) + Send + Sync + 'static,
    ) -> Arc<Self> {
        Self::spawn_with_memory(n, Self::DEFAULT_MEM, registrar)
    }

    /// Spawn with an explicit per-target memory size.
    pub fn spawn_with_memory(
        n: u16,
        mem_bytes: u64,
        registrar: impl Fn(&mut RegistryBuilder) + Send + Sync + 'static,
    ) -> Arc<Self> {
        Self::spawn_inner(n, mem_bytes, BatchConfig::default(), registrar)
    }

    /// Spawn with small-message batching: consecutive posts to one
    /// target coalesce into batch envelopes per `batch`'s watermarks.
    pub fn spawn_batched(
        n: u16,
        batch: BatchConfig,
        registrar: impl Fn(&mut RegistryBuilder) + Send + Sync + 'static,
    ) -> Arc<Self> {
        Self::spawn_inner(n, Self::DEFAULT_MEM, batch, registrar)
    }

    fn spawn_inner(
        n: u16,
        mem_bytes: u64,
        batch: BatchConfig,
        registrar: impl Fn(&mut RegistryBuilder) + Send + Sync + 'static,
    ) -> Arc<Self> {
        let registrar: Arc<Registrar> = Arc::new(registrar);
        let host_registry = Arc::new(build_registry(&registrar, HOST_SEED));
        let targets = (1..=n)
            .map(|node| {
                let (tx, rx) = unbounded();
                // In-process channels have no slot arrays; the explicit
                // credit limit keeps scheduler admission bounded anyway.
                let chan = Arc::new(
                    ChannelCore::unbounded()
                        .with_batching(batch)
                        .with_credit_limit(crate::chan::DEFAULT_PUSH_CREDITS),
                );
                let mem = Arc::new(VecMemory::new(mem_bytes as usize));
                // Each target is its own "binary": same registrar,
                // different seed → different local handler addresses.
                let registry = build_registry(&registrar, 0x5645_0000 + node as u64);
                let end = ChannelEnd {
                    rx,
                    chan: Arc::clone(&chan),
                };
                let mem2 = Arc::clone(&mem);
                let thread = std::thread::Builder::new()
                    .name(format!("local-target-{node}"))
                    .spawn(move || run_target_loop(node, &registry, &*mem2, &end))
                    .expect("spawn target thread");
                Target {
                    tx,
                    chan,
                    mem,
                    alloc: Mutex::new(RangeAllocator::new(mem_bytes)),
                    thread: Mutex::new(Some(thread)),
                }
            })
            .collect();
        let metrics = BackendMetrics::new();
        for node in 1..=n {
            metrics.health().register(node);
        }
        Arc::new(Self {
            host_registry,
            targets,
            clock: Clock::new(),
            mem_bytes,
            metrics,
        })
    }

    fn target(&self, node: NodeId) -> Result<&Target, OffloadError> {
        if node.is_host() {
            return Err(OffloadError::BadNode(node));
        }
        self.targets
            .get(node.0 as usize - 1)
            .ok_or(OffloadError::BadNode(node))
    }
}

/// Build one process's registry from the shared registrar.
pub fn build_registry(registrar: &Arc<Registrar>, seed: u64) -> Registry {
    let mut b = RegistryBuilder::new();
    registrar(&mut b);
    b.seal(seed)
}

impl CommBackend for LocalBackend {
    fn num_targets(&self) -> u16 {
        self.targets.len() as u16
    }

    fn host_registry(&self) -> &Arc<Registry> {
        &self.host_registry
    }

    fn descriptor(&self, node: NodeId) -> Result<NodeDescriptor, OffloadError> {
        if node.is_host() {
            return Ok(NodeDescriptor {
                node,
                name: "local host".into(),
                device_type: DeviceType::Host,
                memory_bytes: 0,
                cores: std::thread::available_parallelism()
                    .map(|n| n.get() as u32)
                    .unwrap_or(1),
            });
        }
        self.target(node)?;
        Ok(NodeDescriptor {
            node,
            name: format!("local target {}", node.0),
            device_type: DeviceType::Generic,
            memory_bytes: self.mem_bytes,
            cores: 1,
        })
    }

    fn channel(&self, target: NodeId) -> Result<&ChannelCore, OffloadError> {
        Ok(self.target(target)?.chan.as_ref())
    }

    fn send_frame(
        &self,
        target: NodeId,
        _res: &Reservation,
        header: &MsgHeader,
        frame: &[u8],
    ) -> Result<(), OffloadError> {
        let t = self.target(target)?;
        // One copy, straight out of the engine's pooled wire frame (the
        // payload path used to copy twice: once assembling the frame,
        // once here). A closed channel means the target thread is gone.
        let payload = frame[ham::wire::HEADER_BYTES..].to_vec();
        t.tx.send((*header, payload))
            .map_err(|_| OffloadError::Shutdown)
    }

    fn allocate(&self, node: NodeId, bytes: u64) -> Result<u64, OffloadError> {
        let t = self.target(node)?;
        t.alloc
            .lock()
            .alloc(bytes, 8)
            .map_err(|e| OffloadError::Mem(e.to_string()))
    }

    fn free(&self, node: NodeId, addr: u64) -> Result<(), OffloadError> {
        let t = self.target(node)?;
        t.alloc
            .lock()
            .free(addr)
            .map_err(|e| OffloadError::Mem(e.to_string()))
    }

    fn put_bytes(&self, dst: RawBuffer, data: &[u8]) -> Result<(), OffloadError> {
        use ham::TargetMemory;
        let t = self.target(dst.node)?;
        t.mem
            .mem_write(dst.addr, data)
            .map_err(|e| OffloadError::Mem(e.to_string()))
    }

    fn get_bytes(&self, src: RawBuffer, out: &mut [u8]) -> Result<(), OffloadError> {
        use ham::TargetMemory;
        let t = self.target(src.node)?;
        t.mem
            .mem_read(src.addr, out)
            .map_err(|e| OffloadError::Mem(e.to_string()))
    }

    fn host_clock(&self) -> &Clock {
        &self.clock
    }

    fn metrics(&self) -> &BackendMetrics {
        &self.metrics
    }

    fn shutdown(&self) {
        for (i, t) in self.targets.iter().enumerate() {
            if !t.chan.begin_shutdown()
                && engine::post_control(self, NodeId(i as u16 + 1)).is_err()
            {
                // The engine refuses an evicted channel, but the worker
                // thread is still parked on its queue — deliver the
                // terminator directly so the join below can't hang.
                let header = MsgHeader {
                    handler_key: ham::registry::HandlerKey(0),
                    payload_len: 0,
                    kind: ham::wire::MsgKind::Control,
                    reply_slot: 0,
                    corr: 0,
                    seq: u64::MAX,
                };
                let _ = t.tx.send((header, Vec::new()));
            }
            if let Some(h) = t.thread.lock().take() {
                let _ = h.join();
            }
        }
    }
}

impl Drop for LocalBackend {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Offload;
    use ham::{f2f, ham_kernel};

    ham_kernel! {
        pub fn axpy_sum(ctx, a: f64, x_addr: u64, y_addr: u64, n: u64) -> f64 {
            let x = ctx.mem.read_f64s(x_addr, n as usize).unwrap();
            let y = ctx.mem.read_f64s(y_addr, n as usize).unwrap();
            x.iter().zip(&y).map(|(xi, yi)| a * xi + yi).sum()
        }
    }

    ham_kernel! {
        pub fn which_node(ctx) -> u16 { ctx.node }
    }

    fn setup(n: u16) -> Offload {
        Offload::new(LocalBackend::spawn(n, |b| {
            b.register::<axpy_sum>();
            b.register::<which_node>();
        }))
    }

    #[test]
    fn sync_offload_round_trip() {
        let o = setup(1);
        assert_eq!(o.sync(NodeId(1), f2f!(which_node)).unwrap(), 1);
        o.shutdown();
    }

    #[test]
    fn async_offloads_overlap() {
        let o = setup(2);
        let f1 = o.async_(NodeId(1), f2f!(which_node)).unwrap();
        let f2 = o.async_(NodeId(2), f2f!(which_node)).unwrap();
        assert_eq!(f2.get().unwrap(), 2);
        assert_eq!(f1.get().unwrap(), 1);
        o.shutdown();
    }

    #[test]
    fn buffers_put_get_and_kernel_access() {
        let o = setup(1);
        let t = NodeId(1);
        let x = o.allocate::<f64>(t, 4).unwrap();
        let y = o.allocate::<f64>(t, 4).unwrap();
        o.put(&[1.0, 2.0, 3.0, 4.0], x).unwrap();
        o.put(&[10.0, 20.0, 30.0, 40.0], y).unwrap();
        let r = o
            .sync(t, f2f!(axpy_sum, 2.0, x.addr(), y.addr(), 4))
            .unwrap();
        assert_eq!(r, 2.0 * 10.0 + 100.0);
        let mut back = [0.0f64; 4];
        o.get(x, &mut back).unwrap();
        assert_eq!(back, [1.0, 2.0, 3.0, 4.0]);
        o.free(x).unwrap();
        o.free(y).unwrap();
        o.shutdown();
    }

    #[test]
    fn copy_between_targets_is_host_orchestrated() {
        let o = setup(2);
        let a = o.allocate::<u64>(NodeId(1), 3).unwrap();
        let b = o.allocate::<u64>(NodeId(2), 3).unwrap();
        o.put(&[7, 8, 9], a).unwrap();
        o.copy(a, b, 3).unwrap();
        let mut out = [0u64; 3];
        o.get(b, &mut out).unwrap();
        assert_eq!(out, [7, 8, 9]);
        o.shutdown();
    }

    #[test]
    fn future_test_is_nonblocking() {
        let o = setup(1);
        let mut f = o.async_(NodeId(1), f2f!(which_node)).unwrap();
        // Eventually becomes ready; test() itself never blocks.
        while !f.test() {
            std::thread::yield_now();
        }
        assert_eq!(f.get().unwrap(), 1);
        o.shutdown();
    }

    #[test]
    fn bad_nodes_are_rejected() {
        let o = setup(1);
        assert!(matches!(
            o.sync(NodeId(0), f2f!(which_node)),
            Err(OffloadError::BadNode(_))
        ));
        assert!(matches!(
            o.sync(NodeId(9), f2f!(which_node)),
            Err(OffloadError::BadNode(_))
        ));
        assert!(o.allocate::<f64>(NodeId(0), 4).is_err());
        o.shutdown();
    }

    #[test]
    fn put_get_length_checks() {
        let o = setup(1);
        let b = o.allocate::<f64>(NodeId(1), 2).unwrap();
        assert!(o.put(&[1.0, 2.0, 3.0], b).is_err());
        let mut out = [0.0; 3];
        assert!(o.get(b, &mut out).is_err());
        o.shutdown();
    }

    #[test]
    fn descriptors() {
        let o = setup(2);
        assert_eq!(o.num_nodes(), 3);
        assert_eq!(o.this_node(), NodeId::HOST);
        let d = o.get_node_descriptor(NodeId(2)).unwrap();
        assert_eq!(d.device_type, DeviceType::Generic);
        let h = o.get_node_descriptor(NodeId::HOST).unwrap();
        assert_eq!(h.device_type, DeviceType::Host);
        o.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_post_after_fails() {
        let o = setup(1);
        o.shutdown();
        o.shutdown();
        assert!(matches!(
            o.sync(NodeId(1), f2f!(which_node)),
            Err(OffloadError::Shutdown)
        ));
    }

    #[test]
    fn many_small_offloads_keep_order_independence() {
        let o = setup(1);
        let futures: Vec<_> = (0..64)
            .map(|_| o.async_(NodeId(1), f2f!(which_node)).unwrap())
            .collect();
        for f in futures {
            assert_eq!(f.get().unwrap(), 1);
        }
        o.shutdown();
    }

    #[test]
    fn wait_any_returns_some_ready_future() {
        let o = setup(2);
        let mut futures: Vec<_> = (0u16..8)
            .map(|i| o.async_(NodeId(1 + (i % 2)), f2f!(which_node)).unwrap())
            .collect();
        let mut got = Vec::new();
        while !futures.is_empty() {
            let i = o.wait_any(&mut futures).expect("something pending");
            let f = futures.swap_remove(i);
            got.push(f.get().unwrap());
        }
        assert!(o.wait_any::<u16>(&mut []).is_none());
        got.sort_unstable();
        assert_eq!(got, [1, 1, 1, 1, 2, 2, 2, 2]);
        o.shutdown();
    }

    #[test]
    fn batched_offloads_deliver_every_result() {
        let o = Offload::new(LocalBackend::spawn_batched(1, BatchConfig::up_to(8), |b| {
            b.register::<axpy_sum>();
            b.register::<which_node>();
        }));
        // 30 posts → batches of 8 plus a partial tail that only an
        // implicit flush (inside wait_all) puts on the wire.
        let futures: Vec<_> = (0..30)
            .map(|_| o.async_(NodeId(1), f2f!(which_node)).unwrap())
            .collect();
        let results: Vec<u16> = o
            .wait_all(futures)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(results, vec![1; 30]);
        // sync still works when its single message is staged: get()
        // flushes before spinning.
        assert_eq!(o.sync(NodeId(1), f2f!(which_node)).unwrap(), 1);
        // Explicit flush of an empty accumulator is a no-op.
        o.flush(NodeId(1)).unwrap();
        let snap = o.metrics_snapshot();
        assert!(
            snap.msgs_sent > snap.frames_sent,
            "batching must coalesce: {} msgs over {} frames",
            snap.msgs_sent,
            snap.frames_sent
        );
        o.shutdown();
    }

    #[test]
    fn wait_all_returns_results_in_order() {
        let o = setup(2);
        let futures: Vec<_> = (0u16..8)
            .map(|i| o.async_(NodeId(1 + (i % 2)), f2f!(which_node)).unwrap())
            .collect();
        let results: Vec<u16> = o
            .wait_all(futures)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(results, [1, 2, 1, 2, 1, 2, 1, 2]);
        o.shutdown();
    }
}
