//! The host-side runtime: the API of Table II.

use crate::backend::{CommBackend, RawBuffer, SlotId};
use crate::buffer::BufferPtr;
use crate::chan::engine;
use crate::future::Future;
use crate::scalar::Scalar;
use crate::types::{NodeDescriptor, NodeId};
use crate::OffloadError;
use aurora_sim_core::{calib, trace, MetricsSnapshot};
use ham::registry::HandlerKey;
use ham::{ActiveMessage, HamError};
use std::sync::Arc;

pub(crate) fn decode_output<M: ActiveMessage>(bytes: &[u8]) -> Result<M::Output, HamError> {
    ham::codec::decode(bytes)
}

/// The HAM-Offload runtime handle held by the host program.
#[derive(Clone)]
pub struct Offload {
    backend: Arc<dyn CommBackend>,
}

impl Offload {
    /// Wrap a constructed backend.
    pub fn new(backend: Arc<dyn CommBackend>) -> Self {
        Self { backend }
    }

    /// The backend (escape hatch for benchmarks and tests).
    pub fn backend(&self) -> &Arc<dyn CommBackend> {
        &self.backend
    }

    // --- topology (Table II) --------------------------------------------

    /// Number of processes in the application: host + targets.
    pub fn num_nodes(&self) -> u16 {
        1 + self.backend.num_targets()
    }

    /// The calling process's address. The host API object always lives in
    /// the host process.
    pub fn this_node(&self) -> NodeId {
        NodeId::HOST
    }

    /// Descriptor of node `n`.
    pub fn get_node_descriptor(&self, n: NodeId) -> Result<NodeDescriptor, OffloadError> {
        self.backend.descriptor(n)
    }

    pub(crate) fn check_target(&self, n: NodeId) -> Result<(), OffloadError> {
        if n.is_host() || n.0 > self.backend.num_targets() {
            return Err(OffloadError::BadNode(n));
        }
        Ok(())
    }

    // --- offloading (Table II: sync / async) ----------------------------

    /// Asynchronous offload of functor `msg` to `target`; returns a
    /// [`Future`] for lazy synchronisation.
    pub fn async_<M: ActiveMessage>(
        &self,
        target: NodeId,
        msg: M,
    ) -> Result<Future<M::Output>, OffloadError> {
        self.check_target(target)?;
        // Every offload gets a fresh correlation id; everything recorded
        // in this scope — and by the backend while posting — joins its
        // span tree. The id also travels in the wire header (`corr`) so
        // the target side attributes its work to the same tree.
        let id = trace::next_offload_id();
        let _of = trace::offload_scope(id);
        let _node = trace::node_scope(NodeId::HOST.0);
        // Host-side framework cost: serialisation, bookkeeping, future.
        let t0 = self.backend.host_clock().now();
        let t1 = self.backend.host_clock().advance(calib::HAM_HOST_OVERHEAD);
        trace::record("ham.host_overhead", 0, t0, t1);
        // Serialise into a recycled buffer from the target channel's
        // frame pool — steady-state posting allocates nothing.
        let chan = self.backend.channel(target)?;
        let mut payload = chan.pool().checkout();
        let key = self
            .backend
            .host_registry()
            .encode_message_into(&msg, &mut payload)?;
        let seq = engine::post(self.backend.as_ref(), target, key, &payload)?;
        self.backend.metrics().on_post(payload.len() as u64);
        Ok(Future::new(
            Arc::clone(&self.backend),
            target,
            SlotId(seq),
            decode_output::<M>,
            id,
            self.backend.host_clock().now(),
        ))
    }

    /// Post an *already-encoded* message — the scheduler's resubmission
    /// path: a pool keeps the encoded payload so a staged offload lost
    /// to an eviction can be replayed on a survivor without re-encoding
    /// (or still owning) the original functor value.
    pub(crate) fn submit_raw<T>(
        &self,
        target: NodeId,
        key: HandlerKey,
        payload: &[u8],
        decode: fn(&[u8]) -> Result<T, HamError>,
    ) -> Result<Future<T>, OffloadError> {
        self.check_target(target)?;
        let id = trace::next_offload_id();
        let _of = trace::offload_scope(id);
        let _node = trace::node_scope(NodeId::HOST.0);
        let t0 = self.backend.host_clock().now();
        let t1 = self.backend.host_clock().advance(calib::HAM_HOST_OVERHEAD);
        trace::record("ham.host_overhead", 0, t0, t1);
        let seq = engine::post(self.backend.as_ref(), target, key, payload)?;
        self.backend.metrics().on_post(payload.len() as u64);
        Ok(Future::new(
            Arc::clone(&self.backend),
            target,
            SlotId(seq),
            decode,
            id,
            self.backend.host_clock().now(),
        ))
    }

    /// Synchronous offload: `async_` + `get`.
    pub fn sync<M: ActiveMessage>(
        &self,
        target: NodeId,
        msg: M,
    ) -> Result<M::Output, OffloadError> {
        self.async_(target, msg)?.get()
    }

    /// Put staged (batched) offloads for `target` on the wire now.
    /// No-op with batching off or nothing staged; blocking waits
    /// ([`Future::get`], [`Offload::wait_any`]/[`Offload::wait_all`])
    /// flush implicitly, so this is only needed to bound the latency of
    /// posts nobody is waiting on yet.
    pub fn flush(&self, target: NodeId) -> Result<(), OffloadError> {
        self.check_target(target)?;
        let _node = trace::node_scope(NodeId::HOST.0);
        engine::flush(self.backend.as_ref(), target)
    }

    // --- batched synchronisation ------------------------------------------

    /// Block until at least one future in `futures` is ready and return
    /// its index (its result is still in the future — claim it with
    /// [`Future::get`]). Returns `None` if no future is pending or
    /// ready (empty slice, or every result already taken).
    ///
    /// One flag sweep per distinct channel serves the whole set: with N
    /// offloads in flight this is O(completions) host work per round,
    /// not N transport polls — the primitive load balancers used to
    /// fake with round-robin [`Future::test`] loops.
    pub fn wait_any<T>(&self, futures: &mut [Future<T>]) -> Option<usize> {
        let mut backoff = crate::chan::Backoff::new();
        loop {
            let mut pending = false;
            for (i, f) in futures.iter_mut().enumerate() {
                if f.is_ready() {
                    return Some(i);
                }
                if f.is_pending() {
                    if f.try_settle_completed() {
                        return Some(i);
                    }
                    pending = true;
                }
            }
            if !pending {
                return None;
            }
            self.sweep(futures);
            backoff.snooze();
        }
    }

    /// Block until *every* future in `futures` is ready, then return
    /// all results in order. Like `wait_any`, each round costs one flag
    /// sweep per distinct channel regardless of how many offloads are
    /// in flight.
    pub fn wait_all<T>(&self, futures: Vec<Future<T>>) -> Vec<Result<T, OffloadError>> {
        let mut futures = futures;
        let mut out = Vec::with_capacity(futures.len());
        self.wait_all_into(&mut futures, &mut out);
        out
    }

    /// [`Offload::wait_all`] into caller-provided vectors: `futures` is
    /// drained, results are pushed onto `out` in order. Reusing both
    /// across iterations keeps a warm post→wait loop allocation-free
    /// end to end (see `tests/alloc_steady_state.rs`).
    pub fn wait_all_into<T>(
        &self,
        futures: &mut Vec<Future<T>>,
        out: &mut Vec<Result<T, OffloadError>>,
    ) {
        let mut backoff = crate::chan::Backoff::new();
        loop {
            let mut pending = false;
            for f in futures.iter_mut() {
                if f.is_pending() && !f.try_settle_completed() {
                    pending = true;
                }
            }
            if !pending {
                break;
            }
            self.sweep(futures);
            backoff.snooze();
        }
        // Everything is settled; get() only decodes/claims.
        out.extend(futures.drain(..).map(Future::get));
    }

    /// One drain of every distinct channel the pending futures wait on.
    /// Dedup is by prefix scan — quadratic in *distinct channels* (a
    /// handful), but allocation-free: this runs every backoff round of
    /// the blocking waits.
    fn sweep<T>(&self, futures: &[Future<T>]) {
        for (i, f) in futures.iter().enumerate() {
            let Some(key) = f.channel_key() else { continue };
            let dup = futures[..i].iter().any(|g| g.channel_key() == Some(key));
            if !dup {
                f.drain_channel();
            }
        }
    }

    // --- scheduling -------------------------------------------------------

    /// A load-aware multi-target pool over `targets` with the default
    /// [`crate::sched::SchedPolicy::LeastLoaded`] policy: `submit`
    /// places each offload on the healthy target with the most spare
    /// credits, blocks when every target is at its credit limit, and
    /// fails staged work over to survivors when a target is evicted.
    pub fn pool(&self, targets: &[NodeId]) -> Result<crate::sched::TargetPool, OffloadError> {
        self.pool_with(targets, crate::sched::SchedPolicy::default())
    }

    /// [`Offload::pool`] with an explicit placement policy.
    pub fn pool_with(
        &self,
        targets: &[NodeId],
        policy: crate::sched::SchedPolicy,
    ) -> Result<crate::sched::TargetPool, OffloadError> {
        crate::sched::TargetPool::new(self.clone(), targets, policy)
    }

    // --- explicit buffer management (Table II) ---------------------------

    /// Allocate a buffer of `len` elements of `T` on `node`.
    pub fn allocate<T: Scalar>(
        &self,
        node: NodeId,
        len: u64,
    ) -> Result<BufferPtr<T>, OffloadError> {
        self.check_target(node)?;
        let bytes = len * T::SIZE as u64;
        let addr = self.backend.allocate(node, bytes)?;
        self.backend.metrics().on_alloc(node.0, addr, bytes);
        Ok(BufferPtr::from_raw(node, addr, len))
    }

    /// Free a buffer previously returned by [`Offload::allocate`].
    pub fn free<T: Scalar>(&self, ptr: BufferPtr<T>) -> Result<(), OffloadError> {
        self.backend.free(ptr.node(), ptr.addr())?;
        self.backend.metrics().on_free(ptr.node().0, ptr.addr());
        Ok(())
    }

    /// Write host data into target memory (Table II `put`).
    pub fn put<T: Scalar>(&self, src: &[T], dst: BufferPtr<T>) -> Result<(), OffloadError> {
        if src.len() as u64 > dst.len() {
            return Err(OffloadError::Mem(format!(
                "put of {} elements into buffer of {}",
                src.len(),
                dst.len()
            )));
        }
        let bytes = T::encode_slice(src);
        let _node = trace::node_scope(NodeId::HOST.0);
        self.backend.put_bytes(
            RawBuffer {
                node: dst.node(),
                addr: dst.addr(),
                len: bytes.len() as u64,
            },
            &bytes,
        )?;
        self.backend.metrics().on_put(bytes.len() as u64);
        Ok(())
    }

    /// Read target memory into a host slice (Table II `get`).
    pub fn get<T: Scalar>(&self, src: BufferPtr<T>, dst: &mut [T]) -> Result<(), OffloadError> {
        if dst.len() as u64 > src.len() {
            return Err(OffloadError::Mem(format!(
                "get of {} elements from buffer of {}",
                dst.len(),
                src.len()
            )));
        }
        let mut bytes = vec![0u8; dst.len() * T::SIZE];
        let _node = trace::node_scope(NodeId::HOST.0);
        self.backend.get_bytes(
            RawBuffer {
                node: src.node(),
                addr: src.addr(),
                len: bytes.len() as u64,
            },
            &mut bytes,
        )?;
        self.backend.metrics().on_get(bytes.len() as u64);
        T::decode_slice(&bytes, dst);
        Ok(())
    }

    /// Table II's asynchronous `put`: returns a `future<void>`. The
    /// simulated transports (like real `veo_write_mem`) complete
    /// synchronously, so the returned future is immediately ready.
    pub fn put_async<T: Scalar>(&self, src: &[T], dst: BufferPtr<T>) -> Future<()> {
        let result = self.put(src, dst);
        Future::ready(dst.node(), result)
    }

    /// Table II's asynchronous `get`: returns a future holding the read
    /// elements (a Rust-safe rendering of the paper's `get(src, dst*)`).
    pub fn get_async<T: Scalar>(&self, src: BufferPtr<T>, len: u64) -> Future<Vec<T>> {
        let mut out = vec![T::ZERO; len as usize];
        let result = self.get(src, &mut out).map(|()| out);
        Future::ready(src.node(), result)
    }

    /// Copy between two target buffers, orchestrated by the host
    /// (Table II `copy`): a `get` into a staging buffer followed by a
    /// `put` — exactly the paper's semantics for targets without direct
    /// peer transfers.
    pub fn copy<T: Scalar>(
        &self,
        src: BufferPtr<T>,
        dst: BufferPtr<T>,
        len: u64,
    ) -> Result<(), OffloadError> {
        if len > src.len() || len > dst.len() {
            return Err(OffloadError::Mem(format!(
                "copy of {len} elements exceeds src ({}) or dst ({})",
                src.len(),
                dst.len()
            )));
        }
        let mut staging = vec![0u8; (len as usize) * T::SIZE];
        let _node = trace::node_scope(NodeId::HOST.0);
        self.backend.get_bytes(
            RawBuffer {
                node: src.node(),
                addr: src.addr(),
                len: staging.len() as u64,
            },
            &mut staging,
        )?;
        self.backend.metrics().on_get(staging.len() as u64);
        self.backend.put_bytes(
            RawBuffer {
                node: dst.node(),
                addr: dst.addr(),
                len: staging.len() as u64,
            },
            &staging,
        )?;
        self.backend.metrics().on_put(staging.len() as u64);
        Ok(())
    }

    // --- observability ---------------------------------------------------

    /// Point-in-time copy of the backend's metric registers: posts,
    /// polls/retries, put/get byte totals, live allocation bytes and the
    /// offload latency distribution. Always on — independent of whether a
    /// [`aurora_sim_core::trace::TraceSession`] is recording.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.backend.metrics().snapshot()
    }

    /// How many offloads are currently in flight on `target`'s channel.
    /// Zero after eviction — leak detection for fault scenarios: every
    /// pending entry must be retired (completed, timed out, or failed
    /// with the eviction error), never stranded.
    pub fn in_flight(&self, target: NodeId) -> Result<usize, OffloadError> {
        Ok(self.backend.channel(target)?.in_flight())
    }

    // --- fault injection --------------------------------------------------

    /// Kill `target` abruptly — no shutdown handshake, as if its process
    /// died or its link was cut. In-flight offloads on that target fail
    /// with [`OffloadError::TargetLost`] at the next flag sweep; other
    /// targets are unaffected. Errors on backends without a kill
    /// mechanism (e.g. the in-process local backend).
    pub fn kill_target(&self, target: NodeId) -> Result<(), OffloadError> {
        self.backend.kill_target(target)?;
        self.backend.metrics().health().record(
            target.0,
            aurora_sim_core::HealthEventKind::FaultInjected,
            0,
            self.backend.host_clock().now().as_ps(),
        );
        Ok(())
    }

    // --- lifecycle -------------------------------------------------------

    /// Shut all targets down (also happens on drop of the last handle).
    pub fn shutdown(&self) {
        self.backend.shutdown();
    }
}

impl core::fmt::Debug for Offload {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Offload({} targets)", self.backend.num_targets())
    }
}
