//! Load-aware multi-target scheduling with credit-based backpressure.
//!
//! The paper's FETI case study (Sec. V) hand-rolls target selection on
//! top of `wait_any`; serving many VEs for real needs placement to be a
//! runtime concern. A [`TargetPool`] wraps a set of healthy targets and
//! places each [`TargetPool::submit`] by policy:
//!
//! * [`SchedPolicy::LeastLoaded`] (default) — the target with the
//!   fewest in-flight messages wins; ties break to the lowest node id,
//!   so placement is a pure function of observable channel state and
//!   deterministic under the fault harness's fixed seeds.
//! * [`SchedPolicy::RoundRobin`] — strict rotation over the healthy
//!   set, skipping targets that are out of credits.
//! * [`SchedPolicy::WeightedByLatency`] — minimises expected queue
//!   delay `(in_flight + 1 + bytes_in_flight/4096) · EWMA(latency)`
//!   using the per-target completion-latency register
//!   [`aurora_sim_core::BackendMetrics`] keeps (the same histogram-backed
//!   register the exposition surface reports, so the scheduler and the
//!   metrics endpoint can never disagree) plus the channel's
//!   bytes-in-flight gauge, which folds large staged frames in as
//!   equivalent queued messages.
//!
//! **Credits.** Every channel exposes a credit limit derived from its
//! slot rings ([`crate::chan::ChannelCore::credit_limit`]): the number
//! of messages the transport can usefully hold in flight. `submit`
//! blocks (flushing staged batches, then backing off via
//! [`crate::chan::Backoff`]) while every healthy target is at its
//! limit — admission control rather than unbounded queueing.
//!
//! **Failover.** A target evicted by the recovery policy (or killed by
//! fault injection) is drained from the pool. Offloads whose frames
//! never reached the transport — staged batch members, envelopes whose
//! send failed — are marked *unsent* by the channel core and are
//! resubmitted to a survivor transparently. Offloads the lost target
//! may already have executed surface their original
//! [`crate::OffloadError`] unchanged: the scheduler must not silently
//! re-execute work with visible side effects.

//!
//! **Observability.** [`TargetPool::metrics_snapshot`] scopes the
//! backend's metric registers to the pool's targets and
//! [`TargetPool::health_report`] aggregates per-target health-registry
//! state, channel occupancy, credit utilization and the latency
//! register with the structured health event log.
//!
//! **Dynamic membership & probing.** Pools are not frozen at
//! construction: [`TargetPool::add_target`] admits a target into a
//! running pool (it receives placements on the next `select`) and
//! [`TargetPool::remove_target`] retires one — staged members are
//! reclaimed for failover, wire traffic drains in place. A background
//! prober ([`TargetPool::start_prober`], paced by [`ProbeConfig`])
//! issues periodic `probe()` round trips per member, feeds a
//! per-target miss streak into every policy's `select` (flapping
//! targets are deprioritized before they hard-fail) and records
//! `Probe`/`ProbeMiss` health events, driving the `Degraded → healed`
//! registry edge without any caller touching the channel.

mod policy;
mod pool;

pub use policy::SchedPolicy;
pub use pool::{
    HealthReport, PoolFuture, PoolMetricsSnapshot, ProbeConfig, TargetHealth, TargetPool,
};
