//! Placement policies for [`super::TargetPool`].

/// How a pool picks the target for the next submission. All policies
/// consume only observable channel state (in-flight counts, credit
/// limits, latency EWMAs) and break ties to the lowest node id, so
/// placement is deterministic for a deterministic workload.
///
/// When the pool's background prober is running
/// ([`super::TargetPool::start_prober`]), every policy additionally
/// orders candidates by their probe-miss streak first (lexicographic
/// `(streak, policy key)`): a target whose probes go unanswered sheds
/// placements to clean peers *before* it hard-fails, and earns them
/// back as probes answer again. With no prober all streaks are zero
/// and the ordering reduces to the plain policy key.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Fewest in-flight messages wins (the default).
    #[default]
    LeastLoaded,
    /// Strict rotation over the healthy targets, skipping any that are
    /// out of credits.
    RoundRobin,
    /// Minimise expected queue delay: `(in_flight + 1) · EWMA(latency)`
    /// per target, fed from the backend's per-node completion-latency
    /// estimate. Targets with no completions yet score as if their
    /// latency were the pool-wide minimum, so cold targets are tried
    /// early rather than starved.
    WeightedByLatency,
}
