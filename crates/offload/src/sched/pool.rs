//! The multi-target pool: placement, admission control, failover.

use super::policy::SchedPolicy;
use crate::chan::{engine, Backoff, ChannelCore};
use crate::future::Future;
use crate::runtime::{decode_output, Offload};
use crate::types::NodeId;
use crate::OffloadError;
use aurora_sim_core::{
    HealthEvent, HealthEventKind, MetricsSnapshot, NodeMetricsSnapshot, SimTime, TargetState,
};
use ham::registry::HandlerKey;
use ham::{ActiveMessage, HamError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One queued message's worth of wire bytes: the divisor that converts
/// the channel's bytes-in-flight gauge into "equivalent queued
/// messages" for [`SchedPolicy::WeightedByLatency`]. A target holding
/// few large frames queues as much service time as one holding many
/// small ones.
const WEIGHT_BYTES_PER_MSG: f64 = 4096.0;

/// Payloads at or below this are "probe-class" for size-aware
/// placement: latency-bound, and cheap enough that the frame cost
/// dominates — they want shallow staged accumulators. Larger payloads
/// are throughput traffic that amortizes onto deep ones.
const SMALL_MSG_BYTES: usize = 256;

/// The expected-service-delay score [`SchedPolicy::WeightedByLatency`]
/// minimizes — and the common currency [`TargetPool::rebalance`]
/// compares donors and recipients in. The base term is queued messages
/// (in-flight plus the candidate itself, with bytes in flight folded in
/// as equivalent messages so a target digesting large frames is not
/// mistaken for an idle one) scaled by the target's EWMA latency.
///
/// `msg_bytes` is the candidate message's payload size when known and
/// makes the score *size-aware*: a probe-class message pays for every
/// member already staged in the target's accumulator (the envelope must
/// fill or age out before the probe flies), while a large message
/// joining a deep accumulator shares its frame and gets half that depth
/// discounted. `None` (placement without a message in hand, e.g.
/// [`TargetPool::try_pick`]) keeps the size-blind score.
fn placement_cost(chan: &ChannelCore, ewma: f64, msg_bytes: Option<usize>) -> f64 {
    let mut queued =
        chan.in_flight() as f64 + 1.0 + chan.bytes_in_flight() as f64 / WEIGHT_BYTES_PER_MSG;
    if let Some(bytes) = msg_bytes {
        queued += bytes as f64 / WEIGHT_BYTES_PER_MSG;
        let staged = chan.staged_len() as f64;
        if bytes <= SMALL_MSG_BYTES {
            queued += staged;
        } else {
            queued = (queued - staged * 0.5).max(1.0);
        }
    }
    queued * ewma
}

fn pool_empty() -> OffloadError {
    OffloadError::Backend("target pool: no healthy targets remain".into())
}

/// Mutable pool state under one lock: the membership roster, the
/// healthy set (sorted ascending, so strict-`<` scans tie-break to the
/// lowest node id), the round-robin cursor, and the per-target
/// probe-miss streaks the background prober maintains.
struct PoolState {
    /// Every current member (sorted, deduped). Eviction prunes a target
    /// from `healthy` but keeps it here so reports cover lost targets;
    /// only [`TargetPool::remove_target`] deletes from the roster.
    members: Vec<NodeId>,
    healthy: Vec<NodeId>,
    cursor: usize,
    /// Consecutive probe-miss streak per target (absent = clean). A
    /// non-zero streak deprioritizes the target in `select` — flapping
    /// targets lose placements *before* they hard-fail — and decays as
    /// probes answer again.
    flaky: HashMap<u16, u32>,
    /// Last [`ChannelCore::resumes`] epoch seen per target. An advance
    /// between probe rounds means the session healed: the miss streak
    /// is cleared immediately instead of decaying over future rounds.
    resumes_seen: HashMap<u16, u64>,
}

impl PoolState {
    fn streak(&self, t: NodeId) -> u32 {
        self.flaky.get(&t.0).copied().unwrap_or(0)
    }

    /// Remove `target` from the healthy set, preserving the rotation
    /// position: the cursor keeps pointing at the same next target
    /// modulo the shrunken set instead of snapping back to the lowest
    /// survivor.
    fn drop_healthy(&mut self, target: NodeId) {
        if let Some(pos) = self.healthy.iter().position(|&t| t == target) {
            self.healthy.remove(pos);
            if pos < self.cursor {
                self.cursor -= 1;
            }
            if self.cursor >= self.healthy.len() {
                self.cursor = 0;
            }
        }
    }
}

/// Cadence and pacing of a pool's background prober (see
/// [`TargetPool::start_prober`]).
///
/// Probe rounds are keyed to *virtual* time: a round fires when
/// `now / every` crosses a tick boundary, so two runs over the same
/// deterministic timeline probe at the same virtual instants. Virtual
/// time only advances while operations advance it, though — a pool
/// whose targets are all down would freeze the clock and starve the
/// prober of the very rounds that detect the healing. `idle_grace`
/// bounds that: after that many consecutive wall polls with no virtual
/// tick, a round fires anyway (wall-paced liveness fallback).
#[derive(Clone, Copy, Debug)]
pub struct ProbeConfig {
    /// Virtual-time cadence between probe rounds.
    pub every: SimTime,
    /// Wall-clock granularity at which the prober thread re-checks the
    /// virtual clock.
    pub poll: Duration,
    /// Consecutive tickless wall polls before a round fires anyway.
    pub idle_grace: u32,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            every: SimTime::from_us(200),
            poll: Duration::from_micros(200),
            idle_grace: 4,
        }
    }
}

/// Handle to a running background prober thread.
struct Prober {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<u64>,
}

/// A set of targets submitted to as one logical compute resource.
/// Built with [`Offload::pool`] / [`Offload::pool_with`].
///
/// Placement, credit-based admission and eviction failover are
/// described on [`crate::sched`]. A pool holds no queue of its own:
/// offloads it admits live in the per-target channels, and offloads it
/// cannot admit block the submitter — backpressure, not buffering.
pub struct TargetPool {
    offload: Offload,
    policy: SchedPolicy,
    /// Shared with the background prober thread, which holds its own
    /// `Arc` so membership survives while the pool handle is in use.
    state: Arc<Mutex<PoolState>>,
    prober: Mutex<Option<Prober>>,
}

/// Per-target operational state as seen by a [`TargetPool`]: health
/// registry verdict, channel occupancy, and the latency register.
/// Produced by [`TargetPool::health_report`].
#[derive(Clone, Debug)]
pub struct TargetHealth {
    /// The target node.
    pub node: NodeId,
    /// Health-registry state (healthy / degraded / evicted).
    pub state: TargetState,
    /// Offloads currently in flight on the target's channel.
    pub in_flight: usize,
    /// Wire bytes in flight (pending frames + staged batch).
    pub bytes_in_flight: u64,
    /// The channel's credit limit.
    pub credit_limit: usize,
    /// `in_flight / credit_limit` in `[0, 1]` (0 for a zero limit).
    pub credit_utilization: f64,
    /// Completions recorded on this target.
    pub completions: u64,
    /// EWMA completion latency in nanoseconds (NaN before the first
    /// completion).
    pub latency_ewma_ns: f64,
    /// Median completion latency (histogram bucket floor).
    pub latency_p50: Option<SimTime>,
    /// 99th-percentile completion latency (histogram bucket floor).
    pub latency_p99: Option<SimTime>,
}

/// Aggregated health view of a pool: one [`TargetHealth`] per
/// configured target (evicted ones included) plus the backend's
/// structured health event log.
#[derive(Clone, Debug)]
pub struct HealthReport {
    /// Per-target state, sorted by node id.
    pub targets: Vec<TargetHealth>,
    /// The backend's health event log (oldest first, ring-bounded).
    pub events: Vec<HealthEvent>,
}

impl HealthReport {
    /// Text rendering: one line per target, then the event count.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for t in &self.targets {
            let ewma = if t.latency_ewma_ns.is_nan() {
                "-".to_string()
            } else {
                format!("{:.1}ns", t.latency_ewma_ns)
            };
            let fmt = |t: Option<SimTime>| t.map_or("-".to_string(), |t| t.to_string());
            out.push_str(&format!(
                "node {}  {}  in-flight {}/{} ({:.0}%)  bytes {}  completions {}  ewma {}  p50 {}  p99 {}\n",
                t.node.0,
                t.state.name(),
                t.in_flight,
                t.credit_limit,
                t.credit_utilization * 100.0,
                t.bytes_in_flight,
                t.completions,
                ewma,
                fmt(t.latency_p50),
                fmt(t.latency_p99),
            ));
        }
        out.push_str(&format!("events: {}\n", self.events.len()));
        out
    }
}

/// A [`MetricsSnapshot`] scoped to one pool: the backend-wide registers
/// plus the per-target breakdown restricted to the pool's targets.
/// Produced by [`TargetPool::metrics_snapshot`].
#[derive(Clone, Debug)]
pub struct PoolMetricsSnapshot {
    /// The backend-wide register snapshot (aggregate histograms,
    /// counters, gauges).
    pub backend: MetricsSnapshot,
    /// Per-target registers for the pool's targets, sorted by node id.
    /// Their histogram buckets and completion counts sum to the
    /// aggregate when the pool covers every target the backend serves.
    pub targets: Vec<NodeMetricsSnapshot>,
}

/// Handle to an offload placed by a [`TargetPool`]. Unlike a plain
/// [`Future`], the pool keeps the encoded message so an offload whose
/// frame verifiably never reached a lost target can be resubmitted to a
/// survivor; claim results with [`TargetPool::get`] /
/// [`TargetPool::wait_any`] / [`TargetPool::wait_all`].
pub struct PoolFuture<T> {
    inner: Option<Future<T>>,
    target: NodeId,
    key: HandlerKey,
    payload: Vec<u8>,
    decode: fn(&[u8]) -> Result<T, HamError>,
    done: Option<Result<T, OffloadError>>,
    resubmits: u32,
    /// Affinity submissions ([`TargetPool::submit_to`]) are pinned to
    /// their target (their data lives there) and never fail over.
    pinned: bool,
}

impl<T> PoolFuture<T> {
    /// The target currently serving (or having served) this offload.
    pub fn target(&self) -> NodeId {
        self.target
    }

    /// Result arrived (and not yet consumed)?
    pub fn is_ready(&self) -> bool {
        self.done.is_some()
    }

    /// How many times the offload was resubmitted to a survivor after
    /// its target was lost before the frame reached the transport.
    pub fn resubmits(&self) -> u32 {
        self.resubmits
    }
}

impl<T> core::fmt::Debug for PoolFuture<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let state = if self.done.is_some() {
            "ready"
        } else {
            "pending"
        };
        write!(
            f,
            "PoolFuture({} {state}, {} resubmits)",
            self.target, self.resubmits
        )
    }
}

impl TargetPool {
    /// Build a pool over `targets` (validated, deduplicated). Errors on
    /// an empty or invalid target list.
    pub fn new(
        offload: Offload,
        targets: &[NodeId],
        policy: SchedPolicy,
    ) -> Result<Self, OffloadError> {
        if targets.is_empty() {
            return Err(OffloadError::Backend(
                "target pool: no targets given".into(),
            ));
        }
        let mut healthy = Vec::with_capacity(targets.len());
        for &t in targets {
            offload.check_target(t)?;
            healthy.push(t);
        }
        healthy.sort_unstable();
        healthy.dedup();
        // Seed the health registry so reports cover targets that never
        // see an event (a target absent from the registry would read as
        // "unknown" rather than healthy-but-idle).
        let health = offload.backend().metrics().health().clone();
        for &t in &healthy {
            health.register(t.0);
        }
        Ok(Self {
            offload,
            policy,
            state: Arc::new(Mutex::new(PoolState {
                members: healthy.clone(),
                healthy,
                cursor: 0,
                flaky: HashMap::new(),
                resumes_seen: HashMap::new(),
            })),
            prober: Mutex::new(None),
        })
    }

    /// Every current member of the pool, evicted-but-not-removed ones
    /// included (reports cover lost targets until
    /// [`TargetPool::remove_target`] deletes them from the roster).
    pub fn targets(&self) -> Vec<NodeId> {
        self.state.lock().members.clone()
    }

    /// Snapshot the backend's metric registers scoped to this pool:
    /// the aggregate plus a per-target breakdown covering all
    /// configured targets (evicted ones keep their final registers).
    pub fn metrics_snapshot(&self) -> PoolMetricsSnapshot {
        let members = self.targets();
        let backend = self.offload.backend().metrics().snapshot();
        let targets = backend
            .per_node
            .iter()
            .filter(|n| members.iter().any(|t| t.0 == n.node))
            .cloned()
            .collect();
        PoolMetricsSnapshot { backend, targets }
    }

    /// Aggregate per-target health: registry state, channel occupancy,
    /// credit utilization, and the latency register, plus the backend's
    /// structured event log. Covers every configured target, evicted
    /// ones included.
    pub fn health_report(&self) -> HealthReport {
        let members = self.targets();
        let backend = self.offload.backend();
        let health = backend.metrics().health();
        let snap = backend.metrics().snapshot();
        let targets = members
            .iter()
            .map(|&t| {
                let (in_flight, bytes_in_flight, credit_limit) = backend
                    .channel(t)
                    .map(|c| (c.in_flight(), c.bytes_in_flight(), c.credit_limit()))
                    .unwrap_or((0, 0, 0));
                let per_node = snap.per_node.iter().find(|n| n.node == t.0);
                TargetHealth {
                    node: t,
                    state: health.state(t.0).unwrap_or(TargetState::Healthy),
                    in_flight,
                    bytes_in_flight,
                    credit_limit,
                    credit_utilization: if credit_limit == 0 {
                        0.0
                    } else {
                        in_flight as f64 / credit_limit as f64
                    },
                    completions: per_node.map_or(0, |n| n.completions),
                    latency_ewma_ns: per_node.map_or(f64::NAN, |n| n.ewma_ns),
                    latency_p50: per_node.and_then(|n| n.latency_hist.percentile(50.0)),
                    latency_p99: per_node.and_then(|n| n.latency_hist.percentile(99.0)),
                }
            })
            .collect();
        HealthReport {
            targets,
            events: health.events(),
        }
    }

    /// The placement policy this pool runs.
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Targets still in the pool (evicted ones are pruned lazily).
    pub fn healthy(&self) -> Vec<NodeId> {
        let mut st = self.state.lock();
        self.prune(&mut st);
        st.healthy.clone()
    }

    /// Number of healthy targets. Counts under the lock without
    /// cloning the healthy set — this sits on the admission path.
    pub fn len(&self) -> usize {
        let mut st = self.state.lock();
        self.prune(&mut st);
        st.healthy.len()
    }

    /// True when every target has been lost.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop evicted targets from the healthy set. The round-robin
    /// cursor is adjusted for every removal *below* it so rotation
    /// resumes at the same next survivor — resetting to 0 would bias
    /// placement toward the lowest-id target after each eviction.
    fn prune(&self, st: &mut PoolState) {
        let backend = self.offload.backend();
        let cursor = st.cursor;
        let mut idx = 0usize;
        let mut removed_below = 0usize;
        st.healthy.retain(|&t| {
            let keep = backend.channel(t).is_ok_and(|c| c.eviction().is_none());
            if !keep && idx < cursor {
                removed_below += 1;
            }
            idx += 1;
            keep
        });
        st.cursor = cursor - removed_below;
        if st.cursor >= st.healthy.len() {
            st.cursor = 0;
        }
    }

    /// Remove one target explicitly (used after a submit/flush failure
    /// that may not have latched an eviction yet).
    fn drop_target(&self, target: NodeId) {
        self.state.lock().drop_healthy(target);
    }

    /// Admit `target` into the running pool. The target must exist on
    /// the backend (for cluster TCP that means its discovery handshake
    /// already completed — see `TcpBackend::join_target`) and must not
    /// be evicted; it starts receiving placements on the very next
    /// `select`. Idempotent: re-adding a current member is a no-op
    /// (`Ok(false)`), and a member that was dropped from the healthy
    /// set by a transient submit failure is re-admitted. Returns
    /// `Ok(true)` when the roster actually grew.
    pub fn add_target(&self, target: NodeId) -> Result<bool, OffloadError> {
        self.offload.check_target(target)?;
        let backend = self.offload.backend();
        let chan = backend.channel(target)?;
        if let Some(e) = chan.eviction() {
            return Err(e);
        }
        let grew = {
            let mut st = self.state.lock();
            let grew = if let Err(pos) = st.members.binary_search(&target) {
                st.members.insert(pos, target);
                true
            } else {
                false
            };
            if let Err(pos) = st.healthy.binary_search(&target) {
                st.healthy.insert(pos, target);
                // An insert below the cursor shifts the rotation's
                // "next" target up by one; keep pointing at it.
                if pos < st.cursor {
                    st.cursor += 1;
                }
            }
            grew
        };
        if grew {
            backend.metrics().health().register(target.0);
            backend.metrics().on_member_join();
        }
        Ok(grew)
    }

    /// Retire `target` from the pool: it stops receiving placements
    /// immediately, staged-but-unflushed members are reclaimed (they
    /// fail over to survivors on their next settle — provably unsent,
    /// so exactly-once holds), and work already on the wire is drained
    /// in place before the call returns (the target keeps serving what
    /// it accepted; results stay claimable through their futures).
    /// Errors with [`OffloadError::BadNode`] when `target` is not a
    /// member. Returns how many staged members were reclaimed.
    pub fn remove_target(&self, target: NodeId) -> Result<usize, OffloadError> {
        {
            let mut st = self.state.lock();
            let Ok(pos) = st.members.binary_search(&target) else {
                return Err(OffloadError::BadNode(target));
            };
            st.members.remove(pos);
            st.drop_healthy(target);
            st.flaky.remove(&target.0);
        }
        let backend = self.offload.backend();
        let mut reclaimed = 0;
        if let Ok(chan) = backend.channel(target) {
            reclaimed = chan.take_staged_tail(chan.staged_len());
            // Bounded in-place drain of wire traffic: a live target
            // finishes what it accepted; a dying one exits through
            // degradation/eviction (its futures fail over or surface
            // the loss) rather than pinning this call.
            let mut backoff = Backoff::new();
            let deadline = Instant::now() + Duration::from_secs(30);
            while chan.in_flight() > 0
                && chan.eviction().is_none()
                && !chan.is_degraded()
                && !chan.is_shutdown()
                && Instant::now() < deadline
            {
                let _ = engine::drain(backend.as_ref(), target);
                backoff.snooze();
            }
        }
        backend.metrics().on_member_leave();
        Ok(reclaimed)
    }

    /// Start the background prober: a supervisor thread that issues one
    /// `probe()` round trip per member per round (cadence in `cfg`),
    /// maintaining the per-target miss streaks `select` deprioritizes
    /// by and recording `Probe`/`ProbeMiss` health events — so the
    /// `Degraded → healed` edge is driven without any caller touching
    /// the channel. Idempotent while a prober is already running.
    pub fn start_prober(&self, cfg: ProbeConfig) {
        let mut guard = self.prober.lock();
        if guard.is_some() {
            return;
        }
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let stop = stop.clone();
            let offload = self.offload.clone();
            let state = self.state.clone();
            std::thread::Builder::new()
                .name("pool-prober".into())
                .spawn(move || prober_main(&offload, &state, cfg, &stop))
                .expect("spawn pool prober thread")
        };
        *guard = Some(Prober { stop, handle });
    }

    /// Stop and join the background prober. Returns how many probe
    /// rounds it ran, or `None` if none was running. Also called by
    /// `Drop`, so an exiting pool never leaks the thread.
    pub fn stop_prober(&self) -> Option<u64> {
        let p = self.prober.lock().take()?;
        p.stop.store(true, Ordering::SeqCst);
        p.handle.join().ok()
    }

    /// One synchronous probe round over the current roster — exactly
    /// what the background prober runs per tick, callable inline for
    /// deterministic tests and ad-hoc health sweeps. Returns
    /// `(answered, missed)`.
    pub fn probe_now(&self) -> (usize, usize) {
        probe_round(&self.offload, &self.state)
    }

    /// Non-blocking placement: `Ok(Some(target))` when a healthy target
    /// has spare credits, `Ok(None)` when all are at their limit (the
    /// caller can do other work — e.g. run a task on the host — instead
    /// of blocking), `Err` when no healthy target remains.
    pub fn try_pick(&self) -> Result<Option<NodeId>, OffloadError> {
        let mut st = self.state.lock();
        self.prune(&mut st);
        if st.healthy.is_empty() {
            return Err(pool_empty());
        }
        Ok(self.select(&mut st, true, None))
    }

    /// Blocking placement: flush staged batches (a full accumulator
    /// holds credits without being on the wire) and back off until a
    /// credit frees up. `msg_bytes` feeds size-aware scoring when the
    /// caller has the message in hand.
    ///
    /// Credit exhaustion waits indefinitely (the work in flight *will*
    /// retire), but an **all-degraded** pool must not: every link is
    /// down and nothing this loop does can complete anything. That wait
    /// is bounded by the targets' reconnect budgets — a session resume
    /// ([`ChannelCore::resumes`] advancing) restarts the budget, an
    /// eviction exits through `pool_empty`, and budget expiry surfaces
    /// [`OffloadError::Timeout`] instead of hanging forever.
    fn pick(&self, msg_bytes: Option<usize>) -> Result<NodeId, OffloadError> {
        let mut backoff = Backoff::new();
        // `(deadline, resume_epoch)` while every healthy target is
        // degraded; `None` otherwise.
        let mut stall: Option<(Instant, u64)> = None;
        loop {
            {
                let mut st = self.state.lock();
                self.prune(&mut st);
                if st.healthy.is_empty() {
                    return Err(pool_empty());
                }
                if let Some(t) = self.select(&mut st, true, msg_bytes) {
                    return Ok(t);
                }
                match self.degraded_wait_budget(&st) {
                    None => stall = None,
                    Some((budget, epoch)) => match stall {
                        Some((deadline, e)) if e == epoch => {
                            if Instant::now() >= deadline {
                                return Err(OffloadError::Timeout);
                            }
                        }
                        // First all-degraded observation, or a resume
                        // made progress since: (re)arm the deadline.
                        _ => stall = Some((Instant::now() + budget, epoch)),
                    },
                }
            }
            // Credit exhaustion integrates with batching: staged
            // envelopes go on the wire now, and the drain sweep lets
            // polled transports retire completions.
            self.drain_all();
            backoff.snooze();
        }
    }

    /// When *every* healthy target is degraded, how long placement is
    /// worth waiting for a resume — the widest member's reconnect
    /// budget (~25 ms per budgeted attempt: the transport's capped
    /// backoff) plus slack — together with the summed resume epochs
    /// (progress detector). `None` while any healthy target is still
    /// connected (its credits will free up; wait indefinitely).
    fn degraded_wait_budget(&self, st: &PoolState) -> Option<(Duration, u64)> {
        let backend = self.offload.backend();
        let mut epoch = 0u64;
        let mut budget_ms = 0u64;
        for &t in &st.healthy {
            let Ok(chan) = backend.channel(t) else {
                continue;
            };
            if !chan.is_degraded() {
                return None;
            }
            epoch = epoch.wrapping_add(chan.resumes());
            let retries = u64::from(chan.recovery_budget().unwrap_or(0));
            budget_ms = budget_ms.max(25 * retries + 500);
        }
        Some((Duration::from_millis(budget_ms.min(60_000)), epoch))
    }

    /// Policy dispatch over the healthy set. `respect_credit = false`
    /// (failover resubmission) still load-balances but never refuses:
    /// blocking on our own in-flight work mid-wait would deadlock, and
    /// the engine's slot backpressure bounds the overshoot. `msg_bytes`
    /// (the candidate message's payload size, when known) makes the
    /// latency-weighted policy size-aware — see [`placement_cost`].
    ///
    /// Every policy folds in the prober's liveness signal: a target
    /// with a probe-miss streak is considered only after all clean
    /// targets (lexicographic `(streak, policy key)` ordering), so a
    /// flapping link sheds placements before it hard-fails. With no
    /// prober running all streaks are zero and behavior is unchanged.
    fn select(
        &self,
        st: &mut PoolState,
        respect_credit: bool,
        msg_bytes: Option<usize>,
    ) -> Option<NodeId> {
        let backend = self.offload.backend();
        match self.policy {
            SchedPolicy::RoundRobin => {
                let n = st.healthy.len();
                // Pass 0 rotates over clean targets only; pass 1 admits
                // flaky ones — a deprioritized target still serves when
                // it is all that's left.
                for pass in 0..2 {
                    for i in 0..n {
                        let idx = (st.cursor + i) % n;
                        let t = st.healthy[idx];
                        if pass == 0 && st.streak(t) > 0 {
                            continue;
                        }
                        let Ok(chan) = backend.channel(t) else {
                            continue;
                        };
                        // A degraded target stays pooled (its link is
                        // reconnecting and it may heal) but takes no new
                        // placements while down.
                        if chan.is_degraded() {
                            continue;
                        }
                        if !respect_credit || chan.has_credit() {
                            st.cursor = (idx + 1) % n;
                            return Some(t);
                        }
                    }
                }
                None
            }
            SchedPolicy::LeastLoaded => {
                let mut best: Option<((u32, usize), NodeId)> = None;
                for &t in &st.healthy {
                    let Ok(chan) = backend.channel(t) else {
                        continue;
                    };
                    if chan.is_degraded() {
                        continue;
                    }
                    let load = chan.in_flight();
                    if respect_credit && load >= chan.credit_limit() {
                        continue;
                    }
                    let key = (st.streak(t), load);
                    if best.is_none_or(|(b, _)| key < b) {
                        best = Some((key, t));
                    }
                }
                best.map(|(_, t)| t)
            }
            SchedPolicy::WeightedByLatency => {
                let metrics = backend.metrics();
                // Cold targets (no completions yet) score with the
                // pool-wide minimum EWMA so they are tried, not starved.
                let mut min_ewma = f64::INFINITY;
                for &t in &st.healthy {
                    if let Some(e) = metrics.latency_ewma(t.0) {
                        min_ewma = min_ewma.min(e);
                    }
                }
                if !min_ewma.is_finite() {
                    min_ewma = 1.0;
                }
                let mut best: Option<((u32, f64), NodeId)> = None;
                for &t in &st.healthy {
                    let Ok(chan) = backend.channel(t) else {
                        continue;
                    };
                    if chan.is_degraded() {
                        continue;
                    }
                    let load = chan.in_flight();
                    if respect_credit && load >= chan.credit_limit() {
                        continue;
                    }
                    let ewma = metrics.latency_ewma(t.0).unwrap_or(min_ewma);
                    let score = placement_cost(chan, ewma, msg_bytes);
                    let key = (st.streak(t), score);
                    if best.is_none_or(|(b, _)| key < b) {
                        best = Some((key, t));
                    }
                }
                best.map(|(_, t)| t)
            }
        }
    }

    /// Flush every healthy target's staged batch and sweep its
    /// completion flags once.
    pub fn drain_all(&self) {
        let targets = {
            let mut st = self.state.lock();
            self.prune(&mut st);
            st.healthy.clone()
        };
        for t in targets {
            let backend = self.offload.backend().as_ref();
            // A degraded target's flush parks until its link heals;
            // don't let it stall draining of the healthy targets.
            if backend.channel(t).is_ok_and(|c| c.is_degraded()) {
                continue;
            }
            let _ = engine::drain(backend, t);
        }
    }

    /// Place `msg` on a target chosen by the pool's policy. Blocks
    /// (flushing + backing off) while every healthy target is at its
    /// credit limit; fails over to a survivor if the chosen target dies
    /// before the post lands.
    pub fn submit<M: ActiveMessage>(&self, msg: M) -> Result<PoolFuture<M::Output>, OffloadError> {
        // Encode into an owned buffer the future keeps: failover replays
        // these bytes on a survivor without re-owning the functor.
        let mut payload = Vec::new();
        let key = self
            .offload
            .backend()
            .host_registry()
            .encode_message_into(&msg, &mut payload)?;
        self.submit_encoded(key, payload, decode_output::<M>, false, None)
    }

    /// Affinity submission: place `msg` on `target` specifically — the
    /// caller has already staged its data there with
    /// [`Offload::put`]. Pinned offloads never fail over (their data
    /// died with the target); a lost target surfaces its error
    /// unchanged.
    pub fn submit_to<M: ActiveMessage>(
        &self,
        target: NodeId,
        msg: M,
    ) -> Result<PoolFuture<M::Output>, OffloadError> {
        let mut payload = Vec::new();
        let key = self
            .offload
            .backend()
            .host_registry()
            .encode_message_into(&msg, &mut payload)?;
        self.submit_encoded(key, payload, decode_output::<M>, true, Some(target))
    }

    fn submit_encoded<T>(
        &self,
        key: HandlerKey,
        payload: Vec<u8>,
        decode: fn(&[u8]) -> Result<T, HamError>,
        pinned: bool,
        fixed: Option<NodeId>,
    ) -> Result<PoolFuture<T>, OffloadError> {
        let mut last_err: Option<OffloadError> = None;
        loop {
            let target = match fixed {
                Some(t) => t,
                None => match self.pick(Some(payload.len())) {
                    Ok(t) => t,
                    // Prefer the error that emptied the pool over the
                    // generic "no targets" one.
                    Err(e) => return Err(last_err.unwrap_or(e)),
                },
            };
            match self.offload.submit_raw(target, key, &payload, decode) {
                Ok(inner) => {
                    return Ok(PoolFuture {
                        inner: Some(inner),
                        target,
                        key,
                        payload,
                        decode,
                        done: None,
                        resubmits: 0,
                        pinned,
                    });
                }
                // Whole-runtime failures are not the target's fault.
                Err(
                    e @ (OffloadError::Shutdown
                    | OffloadError::Ham(_)
                    | OffloadError::Mem(_)
                    | OffloadError::BadNode(_)),
                ) => return Err(e),
                Err(e) => {
                    // Target-specific failure before anything reached
                    // the wire: drain it from the pool, try a survivor.
                    self.drop_target(target);
                    if fixed.is_some() {
                        return Err(e);
                    }
                    last_err = Some(e);
                }
            }
        }
    }

    /// Resubmit a failed-but-unsent offload to a survivor.
    fn repost<T>(&self, fut: &mut PoolFuture<T>) -> Result<(), OffloadError> {
        loop {
            let target = {
                let mut st = self.state.lock();
                self.prune(&mut st);
                if st.healthy.is_empty() {
                    return Err(pool_empty());
                }
                self.select(&mut st, false, Some(fut.payload.len()))
                    .ok_or_else(pool_empty)?
            };
            match self
                .offload
                .submit_raw(target, fut.key, &fut.payload, fut.decode)
            {
                Ok(inner) => {
                    // Record the failover in the health log with the
                    // *new* attempt's correlation id, so the event links
                    // to the span tree of the resubmission that landed.
                    let backend = self.offload.backend();
                    backend.metrics().health().record(
                        target.0,
                        HealthEventKind::Failover,
                        inner.offload_id().0,
                        backend.host_clock().now().as_ps(),
                    );
                    fut.target = target;
                    fut.inner = Some(inner);
                    fut.resubmits += 1;
                    return Ok(());
                }
                Err(OffloadError::Shutdown) => return Err(OffloadError::Shutdown),
                Err(_) => self.drop_target(target),
            }
        }
    }

    /// Settle `fut` from its channel's completion queue (no transport
    /// sweep). `true` once the future is ready; a failed-but-unsent
    /// offload is resubmitted here and stays pending on its new target.
    fn settle<T>(&self, fut: &mut PoolFuture<T>) -> bool {
        if fut.done.is_some() {
            return true;
        }
        let Some(inner) = fut.inner.as_mut() else {
            return true;
        };
        if !inner.try_settle_completed() {
            return false;
        }
        self.harvest(fut)
    }

    /// Consume a settled inner future: success and ordinary failures
    /// park in `done`; failures whose frame verifiably never reached
    /// the transport fail over instead.
    fn harvest<T>(&self, fut: &mut PoolFuture<T>) -> bool {
        let inner = fut.inner.take().expect("settled inner future");
        let seq = inner.seq();
        let target = inner.target();
        match inner.get() {
            Ok(v) => {
                fut.done = Some(Ok(v));
                true
            }
            Err(e) => {
                let unsent = self
                    .offload
                    .backend()
                    .channel(target)
                    .is_ok_and(|c| c.take_unsent(seq));
                if !unsent {
                    fut.done = Some(Err(e));
                    return true;
                }
                let migrated = matches!(e, OffloadError::Migrated);
                if fut.pinned {
                    if migrated {
                        // A rebalance reclaimed this member from its
                        // pinned target's accumulator; the target is
                        // alive, so the message goes straight back.
                        match self
                            .offload
                            .submit_raw(target, fut.key, &fut.payload, fut.decode)
                        {
                            Ok(inner) => {
                                fut.inner = Some(inner);
                                fut.resubmits += 1;
                                return false;
                            }
                            Err(e2) => {
                                fut.done = Some(Err(e2));
                                return true;
                            }
                        }
                    }
                    fut.done = Some(Err(e));
                    return true;
                }
                if !migrated {
                    // The frame never reached a *lost* target — drain
                    // it from the pool. A migration donor is merely
                    // slow and stays in.
                    self.drop_target(target);
                }
                match self.repost(fut) {
                    // Pending again, now on a survivor.
                    Ok(()) => false,
                    Err(_) => {
                        // No survivors: surface the *original* error,
                        // not the repost bookkeeping one.
                        fut.done = Some(Err(e));
                        true
                    }
                }
            }
        }
    }

    /// Migrate staged-but-unflushed batch members off slow targets onto
    /// idle peers. A *donor* is a healthy target holding staged members
    /// behind frames already on the wire (`in_flight() != staged_len()`
    /// — a purely-staged target just needs a flush, not a migration);
    /// migration runs only while some healthy peer is completely idle
    /// with spare credit, so the reclaimed members land somewhere that
    /// serves them now — and only from donors whose [`placement_cost`]
    /// (evaluated for a probe-class message, the traffic rebalancing
    /// exists to un-starve) exceeds that recipient's, so members never
    /// migrate *onto* a worse target. Half the donor's staged tail
    /// (rounded up) is
    /// reclaimed via [`crate::chan::ChannelCore::take_staged_tail`] —
    /// provably unsent, so the failover replay is exact — and each
    /// member's [`PoolFuture`] resubmits itself on its next settle.
    /// Runs automatically inside [`TargetPool::wait_any`] /
    /// [`TargetPool::wait_all`] rounds; returns how many members were
    /// reclaimed.
    pub fn rebalance(&self) -> usize {
        let backend = self.offload.backend();
        let healthy = {
            let mut st = self.state.lock();
            self.prune(&mut st);
            if st.healthy.len() < 2 {
                return 0;
            }
            st.healthy.clone()
        };
        let metrics = backend.metrics();
        let mut min_ewma = f64::INFINITY;
        for &t in &healthy {
            if let Some(e) = metrics.latency_ewma(t.0) {
                min_ewma = min_ewma.min(e);
            }
        }
        if !min_ewma.is_finite() {
            min_ewma = 1.0;
        }
        // The cheapest completely idle recipient, scored with the same
        // size-aware cost model placement uses — evaluated for a
        // probe-class message, because rebalancing exists to un-starve
        // exactly that traffic class.
        let mut recipient = f64::INFINITY;
        for &t in &healthy {
            let Ok(chan) = backend.channel(t) else {
                continue;
            };
            if chan.is_degraded() || chan.in_flight() != 0 || !chan.has_credit() {
                continue;
            }
            let ewma = metrics.latency_ewma(t.0).unwrap_or(min_ewma);
            recipient = recipient.min(placement_cost(chan, ewma, Some(0)));
        }
        if !recipient.is_finite() {
            return 0;
        }
        let mut moved = 0;
        for &t in &healthy {
            let Ok(chan) = backend.channel(t) else {
                continue;
            };
            let staged = chan.staged_len();
            if staged == 0 || chan.in_flight() == staged {
                continue;
            }
            // Migrate only when the move wins under the cost model: a
            // donor cheaper than the best idle recipient (e.g. a fast
            // target briefly holding a shallow accumulator) keeps its
            // members.
            let ewma = metrics.latency_ewma(t.0).unwrap_or(min_ewma);
            if placement_cost(chan, ewma, Some(0)) <= recipient {
                continue;
            }
            moved += chan.take_staged_tail(staged.div_ceil(2));
        }
        moved
    }

    /// One flag sweep per distinct channel the pending futures wait on
    /// (prefix-scan dedup, mirroring [`Offload::wait_all`]).
    fn drain_pending<T>(&self, futures: &[PoolFuture<T>]) {
        let key_of = |f: &PoolFuture<T>| f.inner.as_ref().and_then(Future::channel_key);
        for (i, f) in futures.iter().enumerate() {
            let Some(key) = key_of(f) else { continue };
            let dup = futures[..i].iter().any(|g| key_of(g) == Some(key));
            if !dup {
                if let Some(inner) = f.inner.as_ref() {
                    inner.drain_channel();
                }
            }
        }
    }

    /// Block until at least one future is ready and return its index
    /// (claim the result with [`TargetPool::get`]). `None` when nothing
    /// is pending or ready.
    pub fn wait_any<T>(&self, futures: &mut [PoolFuture<T>]) -> Option<usize> {
        let mut backoff = Backoff::new();
        loop {
            let mut pending = false;
            for (i, f) in futures.iter_mut().enumerate() {
                if f.done.is_some() {
                    return Some(i);
                }
                if f.inner.is_some() {
                    if self.settle(f) {
                        return Some(i);
                    }
                    pending = true;
                }
            }
            if !pending {
                return None;
            }
            self.rebalance();
            self.drain_pending(futures);
            backoff.snooze();
        }
    }

    /// Block until every future is ready and return the results in
    /// order.
    pub fn wait_all<T>(&self, futures: Vec<PoolFuture<T>>) -> Vec<Result<T, OffloadError>> {
        let mut futures = futures;
        let mut backoff = Backoff::new();
        loop {
            let mut pending = false;
            for f in futures.iter_mut() {
                if !self.settle(f) {
                    pending = true;
                }
            }
            if !pending {
                break;
            }
            self.rebalance();
            self.drain_pending(&futures);
            backoff.snooze();
        }
        futures
            .into_iter()
            .map(|f| f.done.expect("settled pool future"))
            .collect()
    }

    /// Blocking accessor: poll (and fail over) until the result is in.
    pub fn get<T>(&self, mut fut: PoolFuture<T>) -> Result<T, OffloadError> {
        let mut backoff = Backoff::new();
        while fut.done.is_none() {
            if !self.settle(&mut fut) {
                if let Some(inner) = fut.inner.as_ref() {
                    inner.drain_channel();
                }
                backoff.snooze();
            }
        }
        fut.done.expect("settled pool future")
    }
}

impl Drop for TargetPool {
    fn drop(&mut self) {
        let _ = self.stop_prober();
    }
}

/// One probe round over the pool roster: per member, clear the miss
/// streak if its session resumed since the last round, then run one
/// [`engine::probe`] round trip — success halves the streak, a miss
/// increments it. Shut-down and evicted channels are skipped (eviction
/// is latched; probing it tells us nothing new). Returns
/// `(answered, missed)`.
fn probe_round(offload: &Offload, state: &Mutex<PoolState>) -> (usize, usize) {
    let backend = offload.backend();
    let members: Vec<NodeId> = state.lock().members.clone();
    let (mut answered, mut missed) = (0, 0);
    for t in members {
        let Ok(chan) = backend.channel(t) else {
            continue;
        };
        if chan.is_shutdown() || chan.eviction().is_some() {
            continue;
        }
        let epoch = chan.resumes();
        {
            let mut st = state.lock();
            if let Some(prev) = st.resumes_seen.insert(t.0, epoch) {
                if prev != epoch {
                    // The transport resumed the session between rounds:
                    // that is the heal notification — forgive the
                    // streak now, don't make the target earn placements
                    // back one halving at a time.
                    st.flaky.remove(&t.0);
                }
            }
        }
        match engine::probe(backend.as_ref(), t) {
            Ok(()) => {
                answered += 1;
                let mut st = state.lock();
                if let Some(s) = st.flaky.get_mut(&t.0) {
                    *s /= 2;
                    if *s == 0 {
                        st.flaky.remove(&t.0);
                    }
                }
            }
            Err(_) => {
                missed += 1;
                let mut st = state.lock();
                let s = st.flaky.entry(t.0).or_insert(0);
                *s = s.saturating_add(1);
            }
        }
    }
    (answered, missed)
}

/// Body of the prober supervisor thread: wall-poll the virtual clock
/// and run [`probe_round`] once per virtual tick (deterministic while
/// traffic advances the clock), with the `idle_grace` wall fallback
/// keeping liveness when virtual time is frozen. Returns the number of
/// rounds run.
fn prober_main(
    offload: &Offload,
    state: &Mutex<PoolState>,
    cfg: ProbeConfig,
    stop: &AtomicBool,
) -> u64 {
    let every = cfg.every.as_ps().max(1);
    let mut last_tick = offload.backend().host_clock().now().as_ps() / every;
    let mut frozen = 0u32;
    let mut rounds = 0u64;
    while !stop.load(Ordering::SeqCst) {
        std::thread::sleep(cfg.poll);
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let tick = offload.backend().host_clock().now().as_ps() / every;
        let due = if tick != last_tick {
            last_tick = tick;
            frozen = 0;
            true
        } else {
            frozen += 1;
            if frozen >= cfg.idle_grace.max(1) {
                frozen = 0;
                true
            } else {
                false
            }
        };
        if due {
            rounds += 1;
            probe_round(offload, state);
        }
    }
    rounds
}

impl core::fmt::Debug for TargetPool {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "TargetPool({:?}, {} healthy)", self.policy, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LocalBackend;
    use ham::{f2f, ham_kernel};

    ham_kernel! {
        pub fn pool_probe(ctx, x: u64) -> u64 { x * 1000 + ctx.node as u64 }
    }

    ham_kernel! {
        pub fn pool_blob(ctx, data: Vec<u8>) -> u64 {
            data.len() as u64 * 1000 + ctx.node as u64
        }
    }

    fn pooled(targets: u16, policy: SchedPolicy) -> (Offload, TargetPool) {
        let o = Offload::new(LocalBackend::spawn(targets, |b| {
            b.register::<pool_probe>();
        }));
        let nodes: Vec<NodeId> = (1..=targets).map(NodeId).collect();
        let p = o.pool_with(&nodes, policy).unwrap();
        (o, p)
    }

    #[test]
    fn empty_and_invalid_pools_are_rejected() {
        let o = Offload::new(LocalBackend::spawn(2, |b| {
            b.register::<pool_probe>();
        }));
        assert!(o.pool(&[]).is_err());
        assert!(o.pool(&[NodeId(9)]).is_err(), "out of range");
        assert!(o.pool(&[NodeId::HOST]).is_err(), "host is not a target");
        let p = o.pool(&[NodeId(2), NodeId(1), NodeId(2)]).unwrap();
        assert_eq!(p.healthy(), vec![NodeId(1), NodeId(2)], "sorted, deduped");
    }

    #[test]
    fn submit_round_trips_through_the_pool() {
        let (_o, p) = pooled(4, SchedPolicy::LeastLoaded);
        let futs: Vec<_> = (0..16)
            .map(|i| p.submit(f2f!(pool_probe, i as u64)).unwrap())
            .collect();
        let got = p.wait_all(futs);
        for (i, r) in got.into_iter().enumerate() {
            let v = r.unwrap();
            assert_eq!(v / 1000, i as u64);
            assert!((1..=4).contains(&(v % 1000)), "served by a pool target");
        }
    }

    #[test]
    fn least_loaded_picks_fewest_in_flight_with_low_tie_break() {
        use aurora_sim_core::SimTime;
        let (o, p) = pooled(3, SchedPolicy::LeastLoaded);
        // All channels idle → all loads equal → lowest node id wins.
        assert_eq!(p.try_pick().unwrap(), Some(NodeId(1)));
        // Pin synthetic load (reservations that never complete, so the
        // counters cannot race the targets): placement must follow the
        // observable in-flight counts.
        let b = o.backend();
        let load = |n: u16| {
            b.channel(NodeId(n))
                .unwrap()
                .try_reserve(false, 0, SimTime::ZERO, 0)
        };
        load(1);
        load(1);
        load(2);
        assert_eq!(p.try_pick().unwrap(), Some(NodeId(3)), "idle target wins");
        load(3);
        // Nodes 2 and 3 tie at one in flight → lowest id.
        assert_eq!(p.try_pick().unwrap(), Some(NodeId(2)));
    }

    #[test]
    fn round_robin_rotates_regardless_of_load() {
        let (_o, p) = pooled(3, SchedPolicy::RoundRobin);
        let targets: Vec<NodeId> = (0..6)
            .map(|i| p.submit(f2f!(pool_probe, i as u64)).unwrap())
            .map(|f| {
                let t = f.target();
                p.get(f).unwrap();
                t
            })
            .collect();
        assert_eq!(
            targets,
            [1, 2, 3, 1, 2, 3].map(NodeId).to_vec(),
            "strict rotation"
        );
    }

    #[test]
    fn weighted_policy_prefers_idle_fast_targets() {
        let (_o, p) = pooled(2, SchedPolicy::WeightedByLatency);
        // No EWMA yet: cold targets score equally, lowest id wins.
        let f = p.submit(f2f!(pool_probe, 7)).unwrap();
        assert_eq!(f.target(), NodeId(1));
        p.get(f).unwrap();
        // With one completion on node 1 and none on node 2, node 2
        // scores with the pool minimum — equal latency, equal load →
        // still deterministic lowest-id.
        assert_eq!(p.try_pick().unwrap(), Some(NodeId(1)));
    }

    #[test]
    fn rebalance_migrates_staged_members_off_a_slow_target() {
        use crate::chan::BatchConfig;
        use aurora_sim_core::SimTime;
        let o = Offload::new(LocalBackend::spawn_batched(
            3,
            BatchConfig::up_to(64),
            |b| {
                b.register::<pool_probe>();
            },
        ));
        let nodes: Vec<NodeId> = (1..=3).map(NodeId).collect();
        let p = o.pool_with(&nodes, SchedPolicy::RoundRobin).unwrap();
        // A synthetic wire frame that never completes makes target 1
        // *slow*: anything staged behind it would wait forever.
        let b = o.backend();
        b.channel(NodeId(1))
            .unwrap()
            .try_reserve(false, 0, SimTime::ZERO, 0);
        // Round-robin staging: one member on target 1 (behind the stuck
        // frame), one on target 2; target 3 stays idle.
        let futs = vec![
            p.submit(f2f!(pool_probe, 10)).unwrap(),
            p.submit(f2f!(pool_probe, 20)).unwrap(),
        ];
        assert_eq!(futs[0].target(), NodeId(1));
        let c1 = b.channel(NodeId(1)).unwrap();
        assert_eq!(c1.staged_len(), 1);
        // Target 1 qualifies as donor (staged work behind a wire
        // frame), target 3 as the idle recipient.
        assert_eq!(p.rebalance(), 1);
        assert_eq!(c1.staged_len(), 0);
        assert_eq!(p.rebalance(), 0, "nothing staged behind wire frames now");
        // Both offloads complete; the migrated member lands on a peer
        // and the donor is *not* evicted from the pool.
        for r in p.wait_all(futs) {
            let v = r.unwrap();
            assert_ne!(v % 1000, 1, "no result can come from stuck target 1");
        }
        assert_eq!(p.healthy(), nodes, "a slow donor stays in the pool");
    }

    #[test]
    fn placement_cost_charges_probes_for_staged_depth() {
        use crate::chan::BatchConfig;
        use aurora_sim_core::SimTime;
        use ham::registry::HandlerKey;
        let chan = ChannelCore::unbounded().with_batching(BatchConfig::up_to(64));
        // Empty channel: the probe and the blind score differ only by
        // the candidate's own bytes; a large message scores its byte
        // term in full.
        let blind0 = placement_cost(&chan, 1.0, None);
        assert!(placement_cost(&chan, 1.0, Some(16)) - blind0 < 0.01);
        for i in 0..4 {
            chan.stage(HandlerKey(7), &[0u8; 16], i, SimTime::ZERO);
        }
        let blind = placement_cost(&chan, 1.0, None);
        let small = placement_cost(&chan, 1.0, Some(16));
        let large = placement_cost(&chan, 1.0, Some(4096));
        // Probe-class messages pay one unit per staged member on top of
        // the blind score; large ones get half the depth discounted.
        assert!(
            small - blind >= 4.0,
            "probe must pay staged depth: {small} vs {blind}"
        );
        assert!(
            large < blind + 1.0,
            "large message must get the staged discount"
        );
        assert!(large >= 1.0, "score floored at one queued message");
        // EWMA scales the whole score.
        assert_eq!(
            placement_cost(&chan, 3.0, Some(16)),
            3.0 * placement_cost(&chan, 1.0, Some(16))
        );
    }

    #[test]
    fn small_probes_avoid_deep_staged_accumulators() {
        use crate::chan::BatchConfig;
        let o = Offload::new(LocalBackend::spawn_batched(
            2,
            BatchConfig::up_to(64),
            |b| {
                b.register::<pool_probe>();
                b.register::<pool_blob>();
            },
        ));
        let nodes: Vec<NodeId> = (1..=2).map(NodeId).collect();
        let p = o.pool_with(&nodes, SchedPolicy::WeightedByLatency).unwrap();
        // Four members staged directly on target 1 (below the watermark,
        // nothing on the wire yet). Target 1 is the *faster* node
        // (1us vs 3us EWMA) — attractive enough that only the
        // size-aware terms decide whether the depth is worth it.
        use aurora_sim_core::SimTime;
        let m = o.backend().metrics();
        m.on_complete_on(1, SimTime::from_us(1));
        m.on_complete_on(2, SimTime::from_us(3));
        let staged: Vec<_> = (0..4)
            .map(|i| o.async_(NodeId(1), f2f!(pool_probe, 90 + i)).unwrap())
            .collect();
        assert_eq!(o.backend().channel(NodeId(1)).unwrap().staged_len(), 4);
        // A large message amortizes the envelope: the staged-depth
        // discount (-0.5/member) pulls the fast deep target below the
        // slow idle peer. Without the discount the same numbers pick
        // the idle node.
        let blob = p.submit(f2f!(pool_blob, vec![1u8; 2048])).unwrap();
        assert_eq!(
            blob.target(),
            NodeId(1),
            "large message should amortize onto the staged envelope"
        );
        // A probe-class message pays for every staged member on t1 and
        // dodges to the slower-but-idle peer.
        let probe = p.submit(f2f!(pool_probe, 7)).unwrap();
        assert_eq!(
            probe.target(),
            NodeId(2),
            "small probe must dodge the deep accumulator"
        );
        for f in staged {
            assert_eq!(f.get().unwrap() % 1000, 1);
        }
        assert_eq!(p.get(probe).unwrap(), 7 * 1000 + 2);
        assert_eq!(p.get(blob).unwrap(), 2048 * 1000 + 1);
    }

    #[test]
    fn rebalance_keeps_members_when_recipient_is_no_better() {
        use crate::chan::BatchConfig;
        use aurora_sim_core::SimTime;
        let o = Offload::new(LocalBackend::spawn_batched(
            2,
            BatchConfig::up_to(64),
            |b| {
                b.register::<pool_probe>();
            },
        ));
        let nodes: Vec<NodeId> = (1..=2).map(NodeId).collect();
        let p = o.pool_with(&nodes, SchedPolicy::RoundRobin).unwrap();
        let b = o.backend();
        // Target 1: one stuck wire frame with one member staged behind
        // it — structurally a donor. Target 2 is idle — structurally a
        // recipient.
        b.channel(NodeId(1))
            .unwrap()
            .try_reserve(false, 0, SimTime::ZERO, 0);
        let futs = vec![p.submit(f2f!(pool_probe, 10)).unwrap()];
        assert_eq!(futs[0].target(), NodeId(1));
        assert_eq!(b.channel(NodeId(1)).unwrap().staged_len(), 1);
        // But the recipient's completion EWMA is a thousand times the
        // donor's: under the size-aware cost model the stuck-but-fast
        // donor (~4 x 1us) still beats the idle-but-slow recipient
        // (1 x 1ms), so the gate keeps the member where it is.
        let m = b.metrics();
        m.on_complete_on(1, SimTime::from_us(1));
        m.on_complete_on(2, SimTime::from_ms(1));
        assert_eq!(
            p.rebalance(),
            0,
            "a slow recipient is not a win over a fast donor"
        );
        assert_eq!(b.channel(NodeId(1)).unwrap().staged_len(), 1);
        // A run of fast completions converges the recipient's EWMA
        // down; the same gate now favours migration.
        for _ in 0..400 {
            m.on_complete_on(2, SimTime::from_us(1));
        }
        assert_eq!(p.rebalance(), 1, "fast idle recipient attracts the member");
        assert_eq!(b.channel(NodeId(1)).unwrap().staged_len(), 0);
        for r in p.wait_all(futs) {
            assert_eq!(r.unwrap() % 1000, 2, "member served by the fast peer");
        }
    }

    /// Regression: an all-degraded pool used to spin `pick()` forever —
    /// every target skipped by `select`, none evicted, so the loop had
    /// no exit. The wait must be bounded by the reconnect budget and
    /// surface `Timeout`.
    #[test]
    fn all_degraded_pool_surfaces_timeout_instead_of_hanging() {
        let (o, p) = pooled(2, SchedPolicy::LeastLoaded);
        let b = o.backend();
        for n in 1..=2u16 {
            b.channel(NodeId(n))
                .unwrap()
                .degrade(OffloadError::TargetLost(NodeId(n)));
        }
        // No recovery armed → no reconnect budget → the minimum 500 ms
        // stall budget applies; well inside the test deadline.
        let deadline = Instant::now() + Duration::from_secs(60);
        let err = p.submit(f2f!(pool_probe, 1)).unwrap_err();
        assert!(matches!(err, OffloadError::Timeout), "got {err:?}");
        assert!(Instant::now() < deadline, "wait must be bounded");
    }

    /// A resume while the placement loop is stalled re-arms the budget
    /// and placement proceeds on the healed target instead of timing
    /// out.
    #[test]
    fn degraded_pool_resumes_placement_after_heal() {
        let (o, p) = pooled(1, SchedPolicy::LeastLoaded);
        let chan = o.backend().channel(NodeId(1)).unwrap();
        chan.degrade(OffloadError::TargetLost(NodeId(1)));
        assert_eq!(p.try_pick().unwrap(), None, "degraded target takes none");
        chan.resume(None, OffloadError::TargetLost(NodeId(1)));
        assert_eq!(chan.resumes(), 1, "resume epoch advanced");
        let f = p.submit(f2f!(pool_probe, 5)).unwrap();
        assert_eq!(p.get(f).unwrap(), 5001);
    }

    /// Regression: pruning an evicted target used to reset the
    /// round-robin cursor to 0, biasing placement toward the lowest
    /// surviving id. The rotation position must be preserved modulo the
    /// shrunken set.
    #[test]
    fn round_robin_rotation_survives_eviction_without_reset() {
        let (o, p) = pooled(3, SchedPolicy::RoundRobin);
        // Advance the rotation so the cursor points at target 3.
        assert_eq!(p.try_pick().unwrap(), Some(NodeId(1)));
        assert_eq!(p.try_pick().unwrap(), Some(NodeId(2)));
        o.backend()
            .channel(NodeId(1))
            .unwrap()
            .evict(OffloadError::TargetLost(NodeId(1)));
        // Next pick is still target 3 — not a snap-back to target 2.
        assert_eq!(p.try_pick().unwrap(), Some(NodeId(3)));
        // And the survivors keep strictly alternating.
        let mut counts = HashMap::new();
        for _ in 0..10 {
            let t = p.try_pick().unwrap().unwrap();
            *counts.entry(t.0).or_insert(0u32) += 1;
        }
        assert_eq!(counts.get(&2), Some(&5), "{counts:?}");
        assert_eq!(counts.get(&3), Some(&5), "{counts:?}");
    }

    #[test]
    fn add_and_remove_target_on_a_running_pool() {
        let o = Offload::new(LocalBackend::spawn(3, |b| {
            b.register::<pool_probe>();
        }));
        let p = o
            .pool_with(&[NodeId(1), NodeId(2)], SchedPolicy::RoundRobin)
            .unwrap();
        // Work in flight across the membership change.
        let futs: Vec<_> = (0..4)
            .map(|i| p.submit(f2f!(pool_probe, i as u64)).unwrap())
            .collect();
        assert!(p.add_target(NodeId(3)).unwrap(), "roster grew");
        assert!(!p.add_target(NodeId(3)).unwrap(), "re-add is a no-op");
        assert!(p.add_target(NodeId(9)).is_err(), "unknown node refused");
        assert_eq!(p.healthy(), vec![NodeId(1), NodeId(2), NodeId(3)]);
        // The joiner takes placements on the next rotation.
        let served: Vec<NodeId> = (0..3)
            .map(|i| {
                let f = p.submit(f2f!(pool_probe, 100 + i as u64)).unwrap();
                let t = f.target();
                p.get(f).unwrap();
                t
            })
            .collect();
        assert!(served.contains(&NodeId(3)), "joiner got work: {served:?}");
        // Retiring a member drains it and stops new placements on it;
        // earlier results stay claimable.
        p.remove_target(NodeId(2)).unwrap();
        assert_eq!(p.healthy(), vec![NodeId(1), NodeId(3)]);
        assert!(
            matches!(p.remove_target(NodeId(2)), Err(OffloadError::BadNode(_))),
            "double remove refused"
        );
        for r in p.wait_all(futs) {
            r.unwrap();
        }
        for _ in 0..4 {
            assert_ne!(p.try_pick().unwrap(), Some(NodeId(2)));
        }
        let m = o.backend().metrics().snapshot();
        assert_eq!((m.member_joins, m.member_leaves), (1, 1));
    }

    /// Probe rounds: misses build a streak that deprioritizes the
    /// target in `select`; a session resume (epoch advance) forgives
    /// the streak at once and the registry heals on the next answered
    /// probe.
    #[test]
    fn probe_misses_deprioritize_then_resume_forgives() {
        use aurora_sim_core::TargetState;
        let (o, p) = pooled(2, SchedPolicy::RoundRobin);
        assert_eq!(p.probe_now(), (2, 0), "all clean");
        let chan = o.backend().channel(NodeId(1)).unwrap();
        chan.degrade(OffloadError::TargetLost(NodeId(1)));
        assert_eq!(p.probe_now(), (1, 1));
        assert_eq!(p.probe_now(), (1, 1));
        let health = o.backend().metrics().health();
        assert_eq!(health.state(1), Some(TargetState::Degraded));
        // The link heals. Before the next probe round the streak still
        // stands, so the clean peer is preferred even though the
        // rotation cursor points at target 1...
        chan.resume(None, OffloadError::TargetLost(NodeId(1)));
        assert_eq!(p.try_pick().unwrap(), Some(NodeId(2)));
        // ...and the next round sees the resume epoch advance, forgives
        // the streak, and the answered probe heals the registry.
        assert_eq!(p.probe_now(), (2, 0));
        assert_eq!(health.state(1), Some(TargetState::Healthy));
        assert_eq!(p.try_pick().unwrap(), Some(NodeId(1)), "back in rotation");
        let m = o.backend().metrics().snapshot();
        assert_eq!(m.probes, 6);
        assert_eq!(m.probe_misses, 2);
    }

    /// The background prober drives rounds by itself: no submissions,
    /// no caller polling — the wall-clock fallback paces rounds while
    /// virtual time is frozen.
    #[test]
    fn background_prober_runs_rounds_without_traffic() {
        let (o, p) = pooled(2, SchedPolicy::LeastLoaded);
        p.start_prober(ProbeConfig {
            every: SimTime::from_us(50),
            poll: Duration::from_millis(1),
            idle_grace: 1,
        });
        p.start_prober(ProbeConfig::default()); // idempotent
        let deadline = Instant::now() + Duration::from_secs(30);
        while o.backend().metrics().snapshot().probes < 3 {
            assert!(Instant::now() < deadline, "prober must make rounds");
            std::thread::sleep(Duration::from_millis(1));
        }
        let rounds = p.stop_prober().expect("prober was running");
        assert!(rounds >= 2, "got {rounds}");
        assert!(p.stop_prober().is_none(), "already stopped");
    }

    #[test]
    fn wait_any_hands_back_ready_futures_one_by_one() {
        let (_o, p) = pooled(2, SchedPolicy::LeastLoaded);
        let mut futs: Vec<_> = (0..6)
            .map(|i| p.submit(f2f!(pool_probe, i as u64)).unwrap())
            .collect();
        let mut seen = 0;
        while !futs.is_empty() {
            let i = p.wait_any(&mut futs).expect("something pending");
            let f = futs.swap_remove(i);
            p.get(f).unwrap();
            seen += 1;
        }
        assert_eq!(seen, 6);
        assert!(p.wait_any::<u64>(&mut []).is_none());
    }
}
