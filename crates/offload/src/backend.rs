//! The communication-backend seam (paper Fig. 1, bottom layer).
//!
//! HAM separates active-message semantics from transport. A backend
//! moves opaque `(key, payload)` messages to a target, result payloads
//! back, and bulk buffer data in both directions. The paper's NEC
//! backends (`ham-backend-veo`, `ham-backend-dma`) implement this trait
//! against the simulated SX-Aurora; [`crate::local::LocalBackend`] is the
//! in-process reference.

use crate::types::{NodeDescriptor, NodeId};
use crate::OffloadError;
use aurora_sim_core::{BackendMetrics, Clock};
use ham::registry::HandlerKey;
use ham::Registry;
use std::sync::Arc;

/// Registers the application's kernels; both "binaries" (host and target
/// processes) are built from the same registrar — HAM-Offload's
/// "compile the whole application for both sides" (§III-C).
pub type Registrar = dyn Fn(&mut ham::RegistryBuilder) + Send + Sync;

/// Identifies an in-flight offload on a target's channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SlotId(pub u64);

/// An untyped view of a target buffer for bulk transfers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RawBuffer {
    /// Owning node.
    pub node: NodeId,
    /// Target-virtual address.
    pub addr: u64,
    /// Length in bytes.
    pub len: u64,
}

/// A message/bulk-data transport to one or more offload targets.
pub trait CommBackend: Send + Sync + 'static {
    /// Number of offload targets (nodes `1..=num_targets`).
    fn num_targets(&self) -> u16;

    /// The host process's sealed handler registry. Built from the same
    /// registrar as every target's, so handler keys agree.
    fn host_registry(&self) -> &Arc<Registry>;

    /// Descriptor of any node, including the host.
    fn descriptor(&self, node: NodeId) -> Result<NodeDescriptor, OffloadError>;

    /// Send an offload message to `target`; returns the slot whose result
    /// to poll. Non-blocking with respect to kernel execution.
    fn post(&self, target: NodeId, key: HandlerKey, payload: &[u8])
        -> Result<SlotId, OffloadError>;

    /// Poll for the result of `slot`. `Ok(None)` while still running.
    fn try_result(&self, target: NodeId, slot: SlotId) -> Result<Option<Vec<u8>>, OffloadError>;

    /// Allocate `bytes` on a target; returns the target-virtual address.
    fn allocate(&self, node: NodeId, bytes: u64) -> Result<u64, OffloadError>;

    /// Free a target allocation.
    fn free(&self, node: NodeId, addr: u64) -> Result<(), OffloadError>;

    /// Write host data into a target buffer (Table II `put`).
    fn put_bytes(&self, dst: RawBuffer, data: &[u8]) -> Result<(), OffloadError>;

    /// Read a target buffer into host memory (Table II `get`).
    fn get_bytes(&self, src: RawBuffer, out: &mut [u8]) -> Result<(), OffloadError>;

    /// The host process's virtual clock (what benchmarks read).
    fn host_clock(&self) -> &Clock;

    /// This backend's metric registers. The runtime bumps them on every
    /// Table II operation; backends only need to own the storage.
    fn metrics(&self) -> &BackendMetrics;

    /// Ask all targets to leave their message loops and join them.
    /// Idempotent.
    fn shutdown(&self);
}
