//! The communication-backend seam (paper Fig. 1, bottom layer).
//!
//! HAM separates active-message semantics from transport — and since the
//! channel-core refactor a backend is *only* a transport. All protocol
//! state (slot accounting, sequence numbers, the in-flight table,
//! completion buffering) lives in the [`crate::chan::ChannelCore`] each
//! backend owns per target, and [`crate::chan::engine`] drives both
//! halves. What remains here are transport verbs:
//!
//! * **polled** transports (VEO, DMA — the Aurora protocols with real
//!   flag words in memory) implement [`CommBackend::poll_flags`] and
//!   [`CommBackend::fetch_frame`]; the engine sweeps flags and pulls
//!   every ready frame;
//! * **push** transports (in-process channels, TCP sockets) have a
//!   receiver thread call [`crate::chan::ChannelCore::deposit`] as
//!   results arrive, and keep the default no-op polls.

use crate::chan::{ChannelCore, PendingEntry, Reservation};
use crate::types::{NodeDescriptor, NodeId};
use crate::OffloadError;
use aurora_sim_core::{BackendMetrics, Clock};
use ham::wire::MsgHeader;
use ham::Registry;
use std::sync::Arc;

/// Registers the application's kernels; both "binaries" (host and target
/// processes) are built from the same registrar — HAM-Offload's
/// "compile the whole application for both sides" (§III-C).
pub type Registrar = dyn Fn(&mut ham::RegistryBuilder) + Send + Sync;

/// Identifies an in-flight offload on a target's channel: the sequence
/// number its [`ChannelCore`] minted at reservation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SlotId(pub u64);

/// An untyped view of a target buffer for bulk transfers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RawBuffer {
    /// Owning node.
    pub node: NodeId,
    /// Target-virtual address.
    pub addr: u64,
    /// Length in bytes.
    pub len: u64,
}

/// A message/bulk-data transport to one or more offload targets.
pub trait CommBackend: Send + Sync + 'static {
    /// Number of offload targets (nodes `1..=num_targets`).
    fn num_targets(&self) -> u16;

    /// The host process's sealed handler registry. Built from the same
    /// registrar as every target's, so handler keys agree.
    fn host_registry(&self) -> &Arc<Registry>;

    /// Descriptor of any node, including the host.
    fn descriptor(&self, node: NodeId) -> Result<NodeDescriptor, OffloadError>;

    /// The channel state of `target` — the engine's half of the
    /// protocol. Every backend owns one [`ChannelCore`] per target.
    fn channel(&self, target: NodeId) -> Result<&ChannelCore, OffloadError>;

    /// Put one wire frame onto the transport, into the slots named by
    /// `res`. `frame` is the *full* wire bytes — header ‖ payload,
    /// already assembled in a pooled buffer by the engine — so
    /// implementations write it verbatim instead of concatenating
    /// header and payload themselves (`header` is passed alongside for
    /// transports that route on it). Called by the engine after a
    /// successful reservation; if this fails the engine cancels the
    /// reservation, so implementations need not clean up channel state.
    fn send_frame(
        &self,
        target: NodeId,
        res: &Reservation,
        header: &MsgHeader,
        frame: &[u8],
    ) -> Result<(), OffloadError>;

    /// Polled transports: check the completion flag of one in-flight
    /// offload. `Ok(Some(token))` means the result frame is ready;
    /// `token` is transport-defined (the DMA protocol passes the
    /// flag's landing timestamp) and is handed back to
    /// [`CommBackend::fetch_frame`]. The default suits push
    /// transports: never ready by polling.
    fn poll_flags(
        &self,
        _target: NodeId,
        _seq: u64,
        _entry: &PendingEntry,
    ) -> Result<Option<u64>, OffloadError> {
        Ok(None)
    }

    /// Polled transports: read the result frame of an offload whose
    /// flag was seen ready, releasing the transport-side slot state.
    /// Slot accounting itself is the engine's job.
    fn fetch_frame(
        &self,
        _target: NodeId,
        _seq: u64,
        _entry: &PendingEntry,
        _token: u64,
    ) -> Result<Vec<u8>, OffloadError> {
        Err(OffloadError::Backend(
            "push transport: results are deposited, not fetched".into(),
        ))
    }

    /// Allocate `bytes` on a target; returns the target-virtual address.
    fn allocate(&self, node: NodeId, bytes: u64) -> Result<u64, OffloadError>;

    /// Free a target allocation.
    fn free(&self, node: NodeId, addr: u64) -> Result<(), OffloadError>;

    /// Write host data into a target buffer (Table II `put`).
    fn put_bytes(&self, dst: RawBuffer, data: &[u8]) -> Result<(), OffloadError>;

    /// Read a target buffer into host memory (Table II `get`).
    fn get_bytes(&self, src: RawBuffer, out: &mut [u8]) -> Result<(), OffloadError>;

    /// The host process's virtual clock (what benchmarks read).
    fn host_clock(&self) -> &Clock;

    /// This backend's metric registers. The runtime bumps them on every
    /// Table II operation; backends only need to own the storage.
    fn metrics(&self) -> &BackendMetrics;

    /// Liveness probe: verify `target` is reachable *right now* without
    /// placing work on it. Transports with a control plane (TCP) send a
    /// real `Ping` round trip; the default checks the channel state — an
    /// evicted or degraded channel fails with its latched error, a
    /// settled one answers. Implementations record the
    /// [`aurora_sim_core::HealthEventKind::Probe`] event themselves so
    /// the health timeline carries the transport's own evidence; the
    /// engine-level wrapper ([`crate::chan::engine::probe`]) adds the
    /// miss bookkeeping on failure.
    fn probe(&self, target: NodeId) -> Result<(), OffloadError> {
        let chan = self.channel(target)?;
        if let Some(e) = chan.eviction() {
            return Err(e);
        }
        if let Some(e) = chan.degradation() {
            return Err(e);
        }
        self.metrics().health().record(
            target.0,
            aurora_sim_core::HealthEventKind::Probe,
            0,
            self.host_clock().now().as_ps(),
        );
        Ok(())
    }

    /// Fault injection: kill one target abruptly (process death, link
    /// cut) without the shutdown handshake, as if the hardware failed.
    /// The next flag sweep observes the death and evicts the target's
    /// channel. Backends without a kill mechanism keep the default.
    fn kill_target(&self, _target: NodeId) -> Result<(), OffloadError> {
        Err(OffloadError::Backend(
            "fault injection is not supported by this backend".into(),
        ))
    }

    /// Ask all targets to leave their message loops and join them.
    /// Idempotent.
    fn shutdown(&self);
}
