//! The VE user DMA engine (§IV-A).
//!
//! Each VE core owns a user DMA engine that VE code programs directly —
//! no VEOS involvement, no on-the-fly translation: source/destination on
//! the host side are VEHVAs resolved through the DMAATB that was filled
//! at setup time. This is the fast path of the paper's DMA protocol.
//!
//! Costs follow `calib::udma_*`: ~1.45 µs setup plus the streaming time
//! at 10.6 (VH⇒VE) / 11.1 (VE⇒VH) GiB/s, serialized per engine and
//! occupying the PCIe wire so contention is modeled.

use aurora_mem::{Dmaatb, MemError, Region, Vehva};
use aurora_pcie::{Direction, PcieLink};
use aurora_sim_core::calib;
use aurora_sim_core::{Clock, SimTime, Timeline};
use std::sync::Arc;

/// One user DMA engine (one per VE core).
#[derive(Clone, Debug)]
pub struct UserDma {
    link: Arc<PcieLink>,
    engine: Timeline,
    /// Extra one-way latency (UPI hop) for the current host pairing.
    extra_one_way: SimTime,
}

impl UserDma {
    /// Engine on the given link with no UPI penalty.
    pub fn new(link: Arc<PcieLink>) -> Self {
        Self::with_extra_latency(link, SimTime::ZERO)
    }

    /// Engine with an additional one-way latency per link crossing
    /// (offloading host process pinned to the remote socket).
    pub fn with_extra_latency(link: Arc<PcieLink>, extra_one_way: SimTime) -> Self {
        Self {
            link,
            engine: Timeline::new(),
            extra_one_way,
        }
    }

    /// DMA *read*: fetch `len` bytes of DMAATB-registered (host) memory at
    /// `src` into local memory `dst` at `dst_off`. Returns the virtual
    /// completion time; `clock` is advanced to it.
    ///
    /// A read is a non-posted round trip: request out, data back — two
    /// extra-latency crossings when UPI is involved.
    pub fn read_host(
        &self,
        clock: &Clock,
        atb: &Dmaatb,
        src: Vehva,
        dst: &Region,
        dst_off: u64,
        len: u64,
    ) -> Result<SimTime, MemError> {
        let target = atb.translate(src, len)?;
        // Real data movement.
        Region::copy_between(&target.region, target.offset, dst, dst_off, len)?;
        // Virtual cost.
        let setup = calib::UDMA_SETUP + self.extra_one_way * 2;
        let issue = self.engine.reserve(clock.now(), setup);
        let base = aurora_sim_core::time::time_at_gib_per_sec(len, calib::UDMA_VH2VE_GIB_S);
        let stream = base + self.fault_delay(base, clock.now());
        let wire = self
            .link
            .occupy_for(Direction::Vh2Ve, issue.end, stream, len);
        aurora_sim_core::trace::record("udma.read", len, issue.start, wire.end);
        Ok(clock.join(wire.end))
    }

    /// DMA *write*: push `len` bytes of local memory `src` at `src_off`
    /// into DMAATB-registered (host) memory at `dst`. Posted: one
    /// extra-latency crossing when UPI is involved.
    pub fn write_host(
        &self,
        clock: &Clock,
        atb: &Dmaatb,
        src: &Region,
        src_off: u64,
        dst: Vehva,
        len: u64,
    ) -> Result<SimTime, MemError> {
        let target = atb.translate(dst, len)?;
        Region::copy_between(src, src_off, &target.region, target.offset, len)?;
        let setup = calib::UDMA_SETUP + self.extra_one_way;
        let issue = self.engine.reserve(clock.now(), setup);
        let base = aurora_sim_core::time::time_at_gib_per_sec(len, calib::UDMA_VE2VH_GIB_S);
        let stream = base + self.fault_delay(base, clock.now());
        let wire = self
            .link
            .occupy_for(Direction::Ve2Vh, issue.end, stream, len);
        aurora_sim_core::trace::record("udma.write", len, issue.start, wire.end);
        Ok(clock.join(wire.end))
    }

    /// Injected engine-level delay (stalls, partial-transfer
    /// retransmissions) for one descriptor of streaming time `base`,
    /// drawn from the fault plan armed on this engine's link. Zero
    /// without a plan.
    fn fault_delay(&self, base: SimTime, now: SimTime) -> SimTime {
        match self.link.faults() {
            Some((plan, actor)) => plan.dma_delay(*actor, base, now),
            None => SimTime::ZERO,
        }
    }

    /// Total busy time of this engine.
    pub fn busy(&self) -> SimTime {
        self.engine.total_busy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_mem::DmaTarget;

    fn setup() -> (UserDma, Dmaatb, Arc<Region>, Vehva, Arc<Region>) {
        let link = Arc::new(PcieLink::default());
        let dma = UserDma::new(link);
        let atb = Dmaatb::new(8);
        let host = Region::new(1 << 20);
        let vehva = atb
            .register(
                DmaTarget {
                    region: Arc::clone(&host),
                    offset: 0,
                },
                1 << 20,
            )
            .unwrap();
        let local = Region::new(1 << 20);
        (dma, atb, host, vehva, local)
    }

    #[test]
    fn read_host_moves_data_and_time() {
        let (dma, atb, host, vehva, local) = setup();
        host.write(64, b"from the host").unwrap();
        let clock = Clock::new();
        let done = dma
            .read_host(&clock, &atb, vehva.offset(64), &local, 0, 13)
            .unwrap();
        let mut buf = [0u8; 13];
        local.read(0, &mut buf).unwrap();
        assert_eq!(&buf, b"from the host");
        // Small transfer ≈ setup cost.
        assert!(done >= calib::UDMA_SETUP);
        assert!(done < calib::UDMA_SETUP + SimTime::from_ns(100));
        assert_eq!(clock.now(), done);
    }

    #[test]
    fn write_host_moves_data_and_time() {
        let (dma, atb, host, vehva, local) = setup();
        local.write(0, b"to the host").unwrap();
        let clock = Clock::new();
        dma.write_host(&clock, &atb, &local, 0, vehva.offset(128), 11)
            .unwrap();
        let mut buf = [0u8; 11];
        host.read(128, &mut buf).unwrap();
        assert_eq!(&buf, b"to the host");
    }

    #[test]
    fn large_transfer_rate_matches_calibration() {
        let (dma, atb, _host, vehva, local) = setup();
        let clock = Clock::new();
        let len = 1 << 20;
        let done = dma.read_host(&clock, &atb, vehva, &local, 0, len).unwrap();
        let bw = aurora_sim_core::time::gib_per_sec(len, done);
        assert!(
            (bw - calib::UDMA_VH2VE_GIB_S).abs() / calib::UDMA_VH2VE_GIB_S < 0.05,
            "bw = {bw}"
        );
    }

    #[test]
    fn ve2vh_faster_than_vh2ve() {
        let (dma, atb, _host, vehva, local) = setup();
        let len = 1 << 20;
        let c1 = Clock::new();
        let t_read = dma.read_host(&c1, &atb, vehva, &local, 0, len).unwrap();
        let dma2 = UserDma::new(Arc::new(PcieLink::default()));
        let c2 = Clock::new();
        let t_write = dma2.write_host(&c2, &atb, &local, 0, vehva, len).unwrap();
        assert!(t_write < t_read, "posted writes beat non-posted reads");
    }

    #[test]
    fn upi_penalty_applies() {
        let link = Arc::new(PcieLink::default());
        let near = UserDma::new(Arc::clone(&link));
        let far = UserDma::with_extra_latency(link, calib::UPI_HOP);
        let atb = Dmaatb::new(8);
        let host = Region::new(4096);
        let vehva = atb
            .register(
                DmaTarget {
                    region: host,
                    offset: 0,
                },
                4096,
            )
            .unwrap();
        let local = Region::new(4096);
        let c1 = Clock::new();
        let t_near = near.read_host(&c1, &atb, vehva, &local, 0, 8).unwrap();
        let c2 = Clock::new();
        let t_far = far.read_host(&c2, &atb, vehva, &local, 0, 8).unwrap();
        assert_eq!(t_far - t_near, calib::UPI_HOP * 2, "read = round trip");
    }

    #[test]
    fn unregistered_vehva_faults() {
        let (dma, atb, _h, _v, local) = setup();
        let clock = Clock::new();
        assert!(matches!(
            dma.read_host(&clock, &atb, Vehva(0x42), &local, 0, 8),
            Err(MemError::NotMapped { .. })
        ));
    }

    #[test]
    fn engine_serializes_requests() {
        let (dma, atb, _host, vehva, local) = setup();
        let clock = Clock::new();
        let len = 1 << 16;
        let t1 = dma.read_host(&clock, &atb, vehva, &local, 0, len).unwrap();
        // Second request from the same virtual instant queues behind the
        // first on the engine timeline; issue from a fresh clock at 0.
        let clock2 = Clock::new();
        let t2 = dma.read_host(&clock2, &atb, vehva, &local, 0, len).unwrap();
        assert!(t2 > t1, "engine busy-until serializes: {t1} then {t2}");
    }
}
