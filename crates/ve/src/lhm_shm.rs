//! LHM / SHM — the VE's Load/Store Host Memory instructions (§IV-A).
//!
//! Single-64-bit-word access to DMAATB-registered memory, issued from VE
//! code (the paper uses inline assembly; here, methods on the unit):
//!
//! * **LHM** (load): a synchronous, non-pipelined PCIe read round trip —
//!   720 ns/word, hence Table IV's 0.01 GiB/s;
//! * **SHM** (store): posted writes that pipeline through the link's
//!   credit window — fast for the first ~256 byte, throttled afterwards
//!   (Table IV: 0.06 GiB/s), which is why the paper suggests them for
//!   small VE→VH messages.
//!
//! `peek_word` exists for polling loops: a real atomic load with **zero
//! virtual cost**. Charging every failed poll would make modeled latency
//! depend on host-OS scheduling; instead the protocols charge exactly one
//! LHM on the successful poll and join the producer's in-band timestamp,
//! i.e. polling is modeled as arrival-driven (documented in DESIGN.md).

use aurora_mem::{Dmaatb, MemError, Vehva};
use aurora_pcie::{Direction, PcieLink};
use aurora_sim_core::calib;
use aurora_sim_core::{Clock, SimTime};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// The LHM/SHM execution unit of one VE core.
///
/// Stores share a posted-write credit window: a store stream issued
/// while credits are drained (within [`calib::SHM_CREDIT_REPLENISH`] of
/// the previous stream's end) runs entirely at the steady rate; after an
/// idle gap the full window is available again. This is what separates
/// Table IV's sustained 0.06 GiB/s from §V-B's fast single-word flags.
#[derive(Clone, Debug)]
pub struct LhmShmUnit {
    link: Arc<PcieLink>,
    extra_one_way: SimTime,
    credits_free_at: Arc<parking_lot::Mutex<SimTime>>,
}

impl LhmShmUnit {
    /// Unit on the given link with no UPI penalty.
    pub fn new(link: Arc<PcieLink>) -> Self {
        Self::with_extra_latency(link, SimTime::ZERO)
    }

    /// Unit with additional per-crossing latency (remote socket).
    pub fn with_extra_latency(link: Arc<PcieLink>, extra_one_way: SimTime) -> Self {
        Self {
            link,
            extra_one_way,
            credits_free_at: Arc::new(parking_lot::Mutex::new(SimTime::ZERO)),
        }
    }

    /// Available credit window at `now`, and mark the stream ending at
    /// `end` as having drained it.
    fn take_window(&self, now: SimTime, stream_cost: impl FnOnce(u64) -> SimTime) -> SimTime {
        let mut free_at = self.credits_free_at.lock();
        let window = if now >= *free_at {
            calib::shm_stream().window_words
        } else {
            0
        };
        let cost = stream_cost(window);
        *free_at = now + cost + calib::SHM_CREDIT_REPLENISH;
        cost
    }

    /// LHM: load one 64-bit word from registered memory. Synchronous
    /// round trip; `clock` advances by the word cost.
    pub fn lhm(&self, clock: &Clock, atb: &Dmaatb, src: Vehva) -> Result<u64, MemError> {
        let t = atb.translate(src, 8)?;
        let v = t.region.atomic_u64(t.offset)?.load(Ordering::Acquire);
        let t0 = clock.now();
        let t1 = clock.advance(calib::LHM_WORD + self.extra_one_way * 2);
        aurora_sim_core::trace::record("lhm.word", 8, t0, t1);
        Ok(v)
    }

    /// Zero-virtual-cost atomic peek for polling loops. See module docs.
    pub fn peek_word(&self, atb: &Dmaatb, src: Vehva) -> Result<u64, MemError> {
        let t = atb.translate(src, 8)?;
        Ok(t.region.atomic_u64(t.offset)?.load(Ordering::Acquire))
    }

    /// SHM: store one 64-bit word to registered memory (Release). Posted;
    /// the returned time is when the word lands in destination memory —
    /// what an in-band timestamp should carry.
    pub fn shm(
        &self,
        clock: &Clock,
        atb: &Dmaatb,
        dst: Vehva,
        value: u64,
    ) -> Result<SimTime, MemError> {
        let t = atb.translate(dst, 8)?;
        let t0 = clock.now();
        let cost = self.take_window(t0, |w| calib::shm_stream().transfer_time_with_window(1, w))
            + self.extra_one_way;
        let done = clock.advance(cost);
        aurora_sim_core::trace::record("shm.word", 8, t0, done);
        t.region
            .atomic_u64(t.offset)?
            .store(value, Ordering::Release);
        Ok(done)
    }

    /// SHM a *timestamp flag*: compute this store's landing time, store
    /// that time (in ps) as the flag's value, and return it. The paper's
    /// DMA protocol uses this for result notification — a non-zero flag
    /// doubles as the in-band virtual timestamp.
    pub fn shm_timestamp(
        &self,
        clock: &Clock,
        atb: &Dmaatb,
        dst: Vehva,
    ) -> Result<SimTime, MemError> {
        let t = atb.translate(dst, 8)?;
        let t0 = clock.now();
        let cost = self.take_window(t0, |w| calib::shm_stream().transfer_time_with_window(1, w))
            + self.extra_one_way;
        let done = clock.advance(cost);
        aurora_sim_core::trace::record("shm.flag", 8, t0, done);
        t.region
            .atomic_u64(t.offset)?
            .store(done.as_ps(), std::sync::atomic::Ordering::Release);
        Ok(done)
    }

    /// SHM a stream of words to consecutive registered addresses,
    /// modelling write-combining across the whole stream (one setup, one
    /// credit window). Returns the landing time of the last word.
    pub fn shm_stream(
        &self,
        clock: &Clock,
        atb: &Dmaatb,
        dst: Vehva,
        words: &[u64],
    ) -> Result<SimTime, MemError> {
        let len = (words.len() * 8) as u64;
        let t = atb.translate(dst, len)?;
        for (i, w) in words.iter().enumerate() {
            t.region.write_u64_le(t.offset + (i * 8) as u64, *w)?;
        }
        let stream = self.take_window(clock.now(), |win| {
            calib::shm_stream().transfer_time_with_window(words.len() as u64, win)
        });
        let wire = self
            .link
            .occupy_for(Direction::Ve2Vh, clock.now(), stream, len);
        Ok(clock.join(wire.end + self.extra_one_way))
    }

    /// LHM a stream of words from consecutive registered addresses.
    /// Loads do not pipeline: each word is a full round trip.
    pub fn lhm_stream(
        &self,
        clock: &Clock,
        atb: &Dmaatb,
        src: Vehva,
        out: &mut [u64],
    ) -> Result<SimTime, MemError> {
        let len = (out.len() * 8) as u64;
        let t = atb.translate(src, len)?;
        for (i, w) in out.iter_mut().enumerate() {
            *w = t.region.read_u64_le(t.offset + (i * 8) as u64)?;
        }
        let per_word = calib::LHM_WORD + self.extra_one_way * 2;
        Ok(clock.advance(per_word * out.len() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_mem::{DmaTarget, Region};

    fn setup() -> (LhmShmUnit, Dmaatb, Arc<Region>, Vehva) {
        let unit = LhmShmUnit::new(Arc::new(PcieLink::default()));
        let atb = Dmaatb::new(8);
        let host = Region::new(1 << 20);
        let vehva = atb
            .register(
                DmaTarget {
                    region: Arc::clone(&host),
                    offset: 0,
                },
                1 << 20,
            )
            .unwrap();
        (unit, atb, host, vehva)
    }

    #[test]
    fn lhm_reads_host_word() {
        let (unit, atb, host, vehva) = setup();
        host.store_u64(16, 0xABCD).unwrap();
        let clock = Clock::new();
        assert_eq!(unit.lhm(&clock, &atb, vehva.offset(16)).unwrap(), 0xABCD);
        assert_eq!(clock.now(), calib::LHM_WORD);
    }

    #[test]
    fn shm_writes_host_word() {
        let (unit, atb, host, vehva) = setup();
        let clock = Clock::new();
        let done = unit.shm(&clock, &atb, vehva.offset(8), 77).unwrap();
        assert_eq!(host.load_u64(8).unwrap(), 77);
        assert_eq!(done, clock.now());
        // One word ≈ 160 ns (§V-B derivation).
        assert!(done < SimTime::from_ns(200), "one-word SHM = {done}");
    }

    #[test]
    fn peek_costs_nothing() {
        let (unit, atb, host, vehva) = setup();
        host.store_u64(0, 5).unwrap();
        let clock = Clock::new();
        assert_eq!(unit.peek_word(&atb, vehva).unwrap(), 5);
        assert_eq!(clock.now(), SimTime::ZERO);
    }

    #[test]
    fn shm_stream_two_regimes() {
        let (unit, atb, host, vehva) = setup();
        let words: Vec<u64> = (0..64).collect();
        let clock = Clock::new();
        unit.shm_stream(&clock, &atb, vehva, &words).unwrap();
        for (i, w) in words.iter().enumerate() {
            assert_eq!(host.read_u64_le((i * 8) as u64).unwrap(), *w);
        }
        let t64 = clock.now();
        // 64 words: 32 fast + 32 steady.
        let expect = calib::shm_stream().transfer_time(64);
        assert_eq!(t64, expect);
    }

    #[test]
    fn lhm_stream_is_per_word_round_trips() {
        let (unit, atb, host, vehva) = setup();
        for i in 0..16u64 {
            host.write_u64_le(i * 8, i * i).unwrap();
        }
        let clock = Clock::new();
        let mut out = [0u64; 16];
        unit.lhm_stream(&clock, &atb, vehva, &mut out).unwrap();
        assert_eq!(out[15], 225);
        assert_eq!(clock.now(), calib::LHM_WORD * 16);
    }

    #[test]
    fn shm_beats_udma_only_up_to_256_bytes() {
        // §V-B cross-check at the unit level.
        let (unit, atb, _host, vehva) = setup();
        let shm_32w = {
            let c = Clock::new();
            unit.shm_stream(&c, &atb, vehva, &vec![0u64; 32]).unwrap();
            c.now()
        };
        let shm_64w = {
            let c = Clock::new();
            unit.shm_stream(&c, &atb, vehva, &vec![0u64; 64]).unwrap();
            c.now()
        };
        assert!(shm_32w < calib::UDMA_SETUP, "SHM wins at 256 B");
        assert!(shm_64w > calib::UDMA_SETUP, "user DMA wins at 512 B");
    }

    #[test]
    fn upi_adds_latency() {
        let link = Arc::new(PcieLink::default());
        let near = LhmShmUnit::new(Arc::clone(&link));
        let far = LhmShmUnit::with_extra_latency(link, calib::UPI_HOP);
        let atb = Dmaatb::new(4);
        let host = Region::new(64);
        let vehva = atb
            .register(
                DmaTarget {
                    region: host,
                    offset: 0,
                },
                64,
            )
            .unwrap();
        let c1 = Clock::new();
        near.lhm(&c1, &atb, vehva).unwrap();
        let c2 = Clock::new();
        far.lhm(&c2, &atb, vehva).unwrap();
        assert_eq!(c2.now() - c1.now(), calib::UPI_HOP * 2);
    }
}
