//! Hardware specifications of Table I.

/// Specifications of one NEC VE Type 10B or comparable device.
#[derive(Clone, Debug, PartialEq)]
pub struct VeSpecs {
    /// Marketing name.
    pub name: &'static str,
    /// Number of cores.
    pub cores: u32,
    /// Hardware threads.
    pub threads: u32,
    /// Vector width in doubles (256 for the VE).
    pub vector_width_f64: u32,
    /// Clock frequency in GHz.
    pub clock_ghz: f64,
    /// Peak double-precision performance in GFLOPS.
    pub peak_gflops: f64,
    /// Device memory in GiB.
    pub memory_gib: u64,
    /// Memory bandwidth in GB/s (10⁹ byte/s, as in Table I).
    pub memory_bw_gb_s: f64,
    /// Last-level cache in MiB.
    pub llc_mib: f64,
    /// Thermal design power in watts.
    pub tdp_w: u32,
}

impl VeSpecs {
    /// NEC VE Type 10B (Table I, right column).
    pub fn type_10b() -> Self {
        Self {
            name: "NEC VE Type 10B",
            cores: 8,
            threads: 8,
            vector_width_f64: 256,
            clock_ghz: 1.4,
            peak_gflops: 2150.4,
            memory_gib: 48,
            memory_bw_gb_s: 1228.8,
            llc_mib: 16.0,
            tdp_w: 300,
        }
    }
}

/// Specifications of a host CPU.
#[derive(Clone, Debug, PartialEq)]
pub struct CpuSpecs {
    /// Marketing name.
    pub name: &'static str,
    /// Number of cores.
    pub cores: u32,
    /// Hardware threads.
    pub threads: u32,
    /// Vector width in doubles (8 = AVX-512).
    pub vector_width_f64: u32,
    /// Clock frequency in GHz.
    pub clock_ghz: f64,
    /// Peak double-precision performance in GFLOPS.
    pub peak_gflops: f64,
    /// Max memory in GiB.
    pub memory_gib: u64,
    /// Memory bandwidth in GB/s.
    pub memory_bw_gb_s: f64,
    /// Last-level cache in MiB.
    pub llc_mib: f64,
    /// Thermal design power in watts.
    pub tdp_w: u32,
}

impl CpuSpecs {
    /// Intel Xeon Gold 6126 (Table I, left column).
    pub fn xeon_gold_6126() -> Self {
        Self {
            name: "Intel Xeon Gold 6126",
            cores: 12,
            threads: 24,
            vector_width_f64: 8,
            clock_ghz: 2.6,
            peak_gflops: 998.4,
            memory_gib: 384,
            memory_bw_gb_s: 128.0,
            llc_mib: 19.25,
            tdp_w: 125,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_ve_values() {
        let ve = VeSpecs::type_10b();
        assert_eq!(ve.cores, 8);
        assert_eq!(ve.vector_width_f64, 256);
        assert_eq!(ve.memory_gib, 48);
        assert!((ve.peak_gflops - 2150.4).abs() < 1e-9);
        assert!((ve.memory_bw_gb_s - 1228.8).abs() < 1e-9);
    }

    #[test]
    fn table_1_cpu_values() {
        let cpu = CpuSpecs::xeon_gold_6126();
        assert_eq!(cpu.cores, 12);
        assert_eq!(cpu.threads, 24);
        assert!((cpu.peak_gflops - 998.4).abs() < 1e-9);
    }

    #[test]
    fn ve_outperforms_cpu_in_peak_but_not_scalar() {
        let ve = VeSpecs::type_10b();
        let cpu = CpuSpecs::xeon_gold_6126();
        assert!(ve.peak_gflops > 2.0 * cpu.peak_gflops);
        assert!(ve.clock_ghz < cpu.clock_ghz, "scalar code favours the VH");
    }
}
