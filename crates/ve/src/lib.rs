//! # aurora-ve
//!
//! Device model of the NEC Vector Engine Type 10B:
//!
//! * [`specs`] — Table I hardware specifications (VE and host CPU);
//! * [`device::VeDevice`] — one VE card: HBM2 memory with its allocator,
//!   the PCIe link, the DMAATB;
//! * [`udma::UserDma`] — the per-core user DMA engine VE code programs
//!   directly (§IV-A), bypassing VEOS;
//! * [`lhm_shm::LhmShmUnit`] — the LHM/SHM (Load/Store Host Memory)
//!   instructions for single-word access to DMAATB-registered memory.
//!
//! Everything the VE initiates operates on VEHVA addresses and requires a
//! prior DMAATB registration — the constraint that shapes the paper's
//! DMA-based protocol (Figs. 7–8).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod device;
pub mod lhm_shm;
pub mod specs;
pub mod udma;

pub use device::VeDevice;
pub use lhm_shm::LhmShmUnit;
pub use specs::{CpuSpecs, VeSpecs};
pub use udma::UserDma;
