//! One Vector Engine card.

use crate::specs::VeSpecs;
use aurora_mem::{Dmaatb, MemError, RangeAllocator, Region};
use aurora_pcie::PcieLink;
use parking_lot::Mutex;
use std::sync::Arc;

/// Number of DMAATB entries per VE (small, as on real hardware).
pub const DMAATB_ENTRIES: usize = 256;

/// A Vector Engine device: HBM2, PCIe link, DMAATB, and specs.
///
/// The simulated HBM is allocated lazily sized well below the real
/// 48 GiB; the configured capacity only bounds the allocator.
#[derive(Debug)]
pub struct VeDevice {
    id: u8,
    socket: u8,
    specs: VeSpecs,
    hbm: Arc<Region>,
    hbm_alloc: Mutex<RangeAllocator>,
    link: Arc<PcieLink>,
    dmaatb: Dmaatb,
}

impl VeDevice {
    /// Create VE `id` attached to `socket` with `hbm_bytes` of simulated
    /// device memory on the given link.
    pub fn new(id: u8, socket: u8, hbm_bytes: u64, link: Arc<PcieLink>) -> Arc<Self> {
        Arc::new(Self {
            id,
            socket,
            specs: VeSpecs::type_10b(),
            hbm: Region::new(hbm_bytes),
            hbm_alloc: Mutex::new(RangeAllocator::new(hbm_bytes)),
            link,
            dmaatb: Dmaatb::new(DMAATB_ENTRIES),
        })
    }

    /// Convenience constructor with a private default link (tests).
    pub fn standalone(id: u8, hbm_bytes: u64) -> Arc<Self> {
        Self::new(id, 0, hbm_bytes, Arc::new(PcieLink::default()))
    }

    /// Device index.
    pub fn id(&self) -> u8 {
        self.id
    }

    /// Hosting socket (PCIe switch) index.
    pub fn socket(&self) -> u8 {
        self.socket
    }

    /// Hardware specs (Table I).
    pub fn specs(&self) -> &VeSpecs {
        &self.specs
    }

    /// The device memory.
    pub fn hbm(&self) -> &Arc<Region> {
        &self.hbm
    }

    /// The device's PCIe link.
    pub fn link(&self) -> &Arc<PcieLink> {
        &self.link
    }

    /// The device's DMA address translation buffer.
    pub fn dmaatb(&self) -> &Dmaatb {
        &self.dmaatb
    }

    /// Allocate `len` bytes of device memory (8-byte aligned minimum).
    pub fn alloc(&self, len: u64, align: u64) -> Result<u64, MemError> {
        self.hbm_alloc.lock().alloc(len, align.max(8))
    }

    /// Free a device allocation.
    pub fn free(&self, offset: u64) -> Result<(), MemError> {
        self.hbm_alloc.lock().free(offset)
    }

    /// Bytes currently allocated on the device.
    pub fn allocated_bytes(&self) -> u64 {
        self.hbm_alloc.lock().allocated_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_construction() {
        let ve = VeDevice::standalone(3, 1 << 20);
        assert_eq!(ve.id(), 3);
        assert_eq!(ve.specs().cores, 8);
        assert_eq!(ve.hbm().len(), 1 << 20);
        assert_eq!(ve.dmaatb().capacity(), DMAATB_ENTRIES);
    }

    #[test]
    fn device_allocation() {
        let ve = VeDevice::standalone(0, 4096);
        let a = ve.alloc(100, 1).unwrap();
        assert_eq!(a % 8, 0, "minimum alignment");
        let b = ve.alloc(100, 64).unwrap();
        assert_eq!(b % 64, 0);
        assert_eq!(ve.allocated_bytes(), 200);
        ve.free(a).unwrap();
        ve.free(b).unwrap();
        assert_eq!(ve.allocated_bytes(), 0);
    }

    #[test]
    fn allocation_exhaustion() {
        let ve = VeDevice::standalone(0, 4096);
        assert!(ve.alloc(8192, 8).is_err());
    }
}
