//! User-facing sugar: [`ham_kernel!`] and [`f2f!`].
//!
//! The paper's `f2f()` ("function to functor") binds arguments to a
//! function and yields an offloadable functor. Rust closures cannot
//! travel between binaries, so [`ham_kernel!`] generates, from a plain
//! `fn` item, the message struct, its [`crate::ActiveMessage`] impl and a
//! positional constructor; [`f2f!`] then reads exactly like the paper's
//! call sites:
//!
//! ```
//! use ham::{ham_kernel, f2f};
//!
//! ham_kernel! {
//!     /// Scale-and-add on plain arguments.
//!     pub fn saxpy(ctx, a: f64, x: f64, y: f64) -> f64 {
//!         let _ = ctx;
//!         a * x + y
//!     }
//! }
//!
//! let functor = f2f!(saxpy, 2.0, 3.0, 1.0);
//! // `functor` is a plain serialisable struct: saxpy { a: 2.0, ... }.
//! assert_eq!(functor.a, 2.0);
//! ```

/// Define an offloadable kernel: generates a message struct named after
/// the function, holding its arguments, whose `execute` runs the body on
/// the target. The first parameter is the [`crate::ExecContext`] binding
/// (an identifier of your choice).
#[macro_export]
macro_rules! ham_kernel {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($ctx:ident $(, $arg:ident : $ty:ty)* $(,)?) -> $out:ty
        $body:block
    ) => {
        $(#[$meta])*
        #[derive(ham::serde::Serialize, ham::serde::Deserialize, Clone, Debug)]
        #[serde(crate = "ham::serde")]
        #[allow(non_camel_case_types)]
        $vis struct $name {
            $(
                /// Bound kernel argument.
                pub $arg: $ty,
            )*
        }

        impl $name {
            /// Positional constructor used by [`f2f!`].
            #[allow(clippy::too_many_arguments)]
            $vis fn new($($arg: $ty),*) -> Self {
                Self { $($arg),* }
            }
        }

        impl $crate::ActiveMessage for $name {
            type Output = $out;

            #[allow(unused_variables)]
            fn execute(self, $ctx: &mut $crate::ExecContext<'_>) -> $out {
                let Self { $($arg),* } = self;
                $body
            }
        }
    };
}

/// Function-to-functor conversion (paper Table II): bind arguments to a
/// [`ham_kernel!`]-defined kernel, yielding the offloadable message.
#[macro_export]
macro_rules! f2f {
    ($kernel:path $(, $arg:expr)* $(,)?) => {
        <$kernel>::new($($arg),*)
    };
}

/// Register several kernels with a [`crate::RegistryBuilder`] in one go.
#[macro_export]
macro_rules! register_kernels {
    ($builder:expr, [$($kernel:ty),* $(,)?]) => {{
        let b = $builder;
        $(b.register::<$kernel>();)*
    }};
}

#[cfg(test)]
mod tests {
    use crate::message::VecMemory;
    use crate::{ActiveMessage, ExecContext, RegistryBuilder};

    ham_kernel! {
        /// Inner product over target memory, mirroring the paper's Fig. 2.
        pub fn inner_product(ctx, a_addr: u64, b_addr: u64, n: u64) -> f64 {
            let a = ctx.mem.read_f64s(a_addr, n as usize).unwrap();
            let b = ctx.mem.read_f64s(b_addr, n as usize).unwrap();
            a.iter().zip(&b).map(|(x, y)| x * y).sum()
        }
    }

    ham_kernel! {
        pub fn no_args(ctx) -> u16 {
            ctx.node
        }
    }

    ham_kernel! {
        pub fn stringy(_ctx, label: String, reps: u64) -> String {
            label.repeat(reps as usize)
        }
    }

    #[test]
    fn f2f_builds_the_functor() {
        let f = f2f!(inner_product, 0, 64, 4);
        assert_eq!(f.a_addr, 0);
        assert_eq!(f.b_addr, 64);
        assert_eq!(f.n, 4);
    }

    #[test]
    fn kernel_executes_against_target_memory() {
        let mem = VecMemory::new(256);
        use crate::message::TargetMemory;
        mem.write_f64s(0, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        mem.write_f64s(64, &[4.0, 3.0, 2.0, 1.0]).unwrap();
        let mut ctx = ExecContext::new(1, &mem);
        let r = f2f!(inner_product, 0, 64, 4).execute(&mut ctx);
        assert_eq!(r, 20.0);
    }

    #[test]
    fn zero_arg_kernel() {
        let mem = VecMemory::new(0);
        let mut ctx = ExecContext::new(9, &mem);
        assert_eq!(f2f!(no_args).execute(&mut ctx), 9);
    }

    #[test]
    fn owned_argument_types() {
        let mem = VecMemory::new(0);
        let mut ctx = ExecContext::new(0, &mem);
        let r = f2f!(stringy, "ab".to_string(), 3).execute(&mut ctx);
        assert_eq!(r, "ababab");
    }

    #[test]
    fn kernels_register_and_dispatch_via_keys() {
        let mut b = RegistryBuilder::new();
        register_kernels!(&mut b, [inner_product, no_args, stringy]);
        let host = b.seal(1);
        let mut b2 = RegistryBuilder::new();
        register_kernels!(&mut b2, [stringy, inner_product, no_args]);
        let target = b2.seal(2);

        let (key, payload) = host.encode_message(&f2f!(stringy, "x".into(), 2)).unwrap();
        let mem = VecMemory::new(0);
        let mut ctx = ExecContext::new(1, &mem);
        let out = target.execute(key, &payload, &mut ctx).unwrap();
        assert_eq!(
            crate::Registry::decode_result::<stringy>(&out).unwrap(),
            "xx"
        );
    }

    #[test]
    fn functor_round_trips_through_codec() {
        let f = f2f!(inner_product, 10, 20, 30);
        let bytes = crate::codec::encode(&f).unwrap();
        let back: inner_product = crate::codec::decode(&bytes).unwrap();
        assert_eq!(back.a_addr, 10);
        assert_eq!(back.n, 30);
    }
}
