//! Handler registries and cross-binary key translation (paper Fig. 6).
//!
//! Each process collects the type names and local addresses of its
//! message handlers during initialisation. Sorting the table
//! lexicographically by type name yields the same order in every process
//! *without communication*; the index into the sorted table is the
//! globally valid **handler key**, translated in O(1) to the local
//! handler address on receive.
//!
//! The simulation makes the heterogeneity real: local handler addresses
//! are synthesised per process from a seed (standing in for the differing
//! code addresses of the VH and VE binaries), so nothing works unless the
//! key translation does.

use crate::codec;
use crate::message::{ActiveMessage, ExecContext};
use crate::HamError;
use aurora_sim_core::rng::SplitMix64;
use std::collections::HashMap;

/// Globally valid message-type identifier: index into the sorted table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HandlerKey(pub u64);

/// A local handler: deserialises the payload, executes, serialises the
/// result. Generated per message type.
pub type HandlerFn = fn(&[u8], &mut ExecContext<'_>) -> Result<Vec<u8>, HamError>;

fn handler_of<M: ActiveMessage>() -> HandlerFn {
    |payload, ctx| {
        let msg: M = codec::decode(payload)?;
        let out = msg.execute(ctx);
        codec::encode(&out)
    }
}

/// Collects registrations before the table is sealed.
#[derive(Default)]
pub struct RegistryBuilder {
    entries: Vec<(&'static str, HandlerFn)>,
}

impl RegistryBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register message type `M`. Duplicate registrations are idempotent.
    pub fn register<M: ActiveMessage>(&mut self) -> &mut Self {
        let tag = M::type_tag();
        if !self.entries.iter().any(|(t, _)| *t == tag) {
            self.entries.push((tag, handler_of::<M>()));
        }
        self
    }

    /// Seal the table for one process. `process_seed` synthesises that
    /// process's local handler addresses (different per "binary").
    pub fn seal(self, process_seed: u64) -> Registry {
        let mut entries = self.entries;
        // Sorting by type name produces identical key assignment in every
        // process regardless of registration order (the paper's trick).
        entries.sort_by_key(|(name, _)| *name);

        // Synthesise distinct local addresses, scrambled per process.
        let mut addresses: Vec<u64> = (0..entries.len() as u64)
            .map(|i| 0x4000_0000 + i * 0x40)
            .collect();
        SplitMix64::new(process_seed ^ 0x9E37_79B9).shuffle(&mut addresses);

        let mut by_key = Vec::with_capacity(entries.len());
        let mut handlers = HashMap::with_capacity(entries.len());
        let mut key_by_name = HashMap::with_capacity(entries.len());
        let mut names = Vec::with_capacity(entries.len());
        for (i, ((name, h), addr)) in entries.into_iter().zip(addresses).enumerate() {
            by_key.push(addr);
            handlers.insert(addr, h);
            key_by_name.insert(name, HandlerKey(i as u64));
            names.push(name);
        }
        Registry {
            by_key,
            handlers,
            key_by_name,
            names,
        }
    }
}

/// One process's sealed handler table.
pub struct Registry {
    /// key → local handler address (the O(1) translation of Fig. 6).
    by_key: Vec<u64>,
    /// local address → handler code.
    handlers: HashMap<u64, HandlerFn>,
    key_by_name: HashMap<&'static str, HandlerKey>,
    names: Vec<&'static str>,
}

impl Registry {
    /// The handler key of message type `M` (sender side of Fig. 6).
    pub fn key_of<M: ActiveMessage>(&self) -> Result<HandlerKey, HamError> {
        self.key_by_name
            .get(M::type_tag())
            .copied()
            .ok_or(HamError::Unregistered(M::type_tag()))
    }

    /// Translate a key to this process's local handler address.
    pub fn address_of(&self, key: HandlerKey) -> Result<u64, HamError> {
        self.by_key
            .get(key.0 as usize)
            .copied()
            .ok_or(HamError::UnknownKey(key.0))
    }

    /// Execute the handler for `key` on `payload` (receiver side of
    /// Fig. 6: key → address → call).
    pub fn execute(
        &self,
        key: HandlerKey,
        payload: &[u8],
        ctx: &mut ExecContext<'_>,
    ) -> Result<Vec<u8>, HamError> {
        let addr = self.address_of(key)?;
        let handler = self
            .handlers
            .get(&addr)
            .ok_or(HamError::UnknownKey(key.0))?;
        handler(payload, ctx)
    }

    /// Number of registered message types.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// True when no messages are registered.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Sorted type names (the shared table layout).
    pub fn names(&self) -> &[&'static str] {
        &self.names
    }

    /// Encode a message for the wire: `(key, payload)`.
    pub fn encode_message<M: ActiveMessage>(
        &self,
        msg: &M,
    ) -> Result<(HandlerKey, Vec<u8>), HamError> {
        Ok((self.key_of::<M>()?, codec::encode(msg)?))
    }

    /// [`Self::encode_message`] into a caller-provided buffer (appended),
    /// returning only the key — the allocation-free post path encodes
    /// into a pooled frame buffer instead of a fresh `Vec`.
    pub fn encode_message_into<M: ActiveMessage>(
        &self,
        msg: &M,
        out: &mut Vec<u8>,
    ) -> Result<HandlerKey, HamError> {
        let key = self.key_of::<M>()?;
        codec::encode_into(msg, out)?;
        Ok(key)
    }

    /// Decode a result payload produced by `M`'s handler.
    pub fn decode_result<M: ActiveMessage>(payload: &[u8]) -> Result<M::Output, HamError> {
        codec::decode(payload)
    }
}

impl core::fmt::Debug for Registry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Registry")
            .field("types", &self.names)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::VecMemory;
    use proptest::prelude::*;
    use serde::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize)]
    struct Add {
        a: u64,
        b: u64,
    }
    impl ActiveMessage for Add {
        type Output = u64;
        fn execute(self, _: &mut ExecContext<'_>) -> u64 {
            self.a + self.b
        }
    }

    #[derive(Serialize, Deserialize)]
    struct Mul {
        a: u64,
        b: u64,
    }
    impl ActiveMessage for Mul {
        type Output = u64;
        fn execute(self, _: &mut ExecContext<'_>) -> u64 {
            self.a.wrapping_mul(self.b)
        }
    }

    #[derive(Serialize, Deserialize)]
    struct Greet {
        name: String,
    }
    impl ActiveMessage for Greet {
        type Output = String;
        fn execute(self, ctx: &mut ExecContext<'_>) -> String {
            format!("hello {} from node {}", self.name, ctx.node)
        }
    }

    fn build(seed: u64) -> Registry {
        let mut b = RegistryBuilder::new();
        b.register::<Add>().register::<Mul>().register::<Greet>();
        b.seal(seed)
    }

    fn build_reversed(seed: u64) -> Registry {
        let mut b = RegistryBuilder::new();
        b.register::<Greet>().register::<Mul>().register::<Add>();
        b.seal(seed)
    }

    #[test]
    fn keys_agree_across_processes_and_registration_order() {
        let host = build(1);
        let target = build_reversed(2);
        assert_eq!(
            host.key_of::<Add>().unwrap(),
            target.key_of::<Add>().unwrap()
        );
        assert_eq!(
            host.key_of::<Mul>().unwrap(),
            target.key_of::<Mul>().unwrap()
        );
        assert_eq!(
            host.key_of::<Greet>().unwrap(),
            target.key_of::<Greet>().unwrap()
        );
        assert_eq!(host.names(), target.names());
    }

    #[test]
    fn local_addresses_differ_across_processes() {
        let host = build(1);
        let target = build(2);
        let key = host.key_of::<Add>().unwrap();
        // With three entries and different seeds, at least one address
        // should differ (deterministic for these seeds).
        let differs = (0..host.len() as u64).any(|k| {
            host.address_of(HandlerKey(k)).unwrap() != target.address_of(HandlerKey(k)).unwrap()
        });
        assert!(
            differs,
            "heterogeneous binaries must have different addresses"
        );
        // ...and yet the key still executes correctly on both.
        let payload = codec::encode(&Add { a: 2, b: 3 }).unwrap();
        let mem = VecMemory::new(0);
        let mut ctx = ExecContext::new(1, &mem);
        let r1 = host.execute(key, &payload, &mut ctx).unwrap();
        let r2 = target.execute(key, &payload, &mut ctx).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(Registry::decode_result::<Add>(&r1).unwrap(), 5);
    }

    #[test]
    fn end_to_end_send_execute_decode() {
        let host = build(11);
        let target = build_reversed(22);
        let (key, payload) = host
            .encode_message(&Greet {
                name: "aurora".into(),
            })
            .unwrap();
        let mem = VecMemory::new(0);
        let mut ctx = ExecContext::new(1, &mem);
        let result = target.execute(key, &payload, &mut ctx).unwrap();
        assert_eq!(
            Registry::decode_result::<Greet>(&result).unwrap(),
            "hello aurora from node 1"
        );
    }

    #[test]
    fn unknown_key_is_rejected() {
        let r = build(1);
        let mem = VecMemory::new(0);
        let mut ctx = ExecContext::new(0, &mem);
        assert!(matches!(
            r.execute(HandlerKey(99), &[], &mut ctx),
            Err(HamError::UnknownKey(99))
        ));
    }

    #[test]
    fn unregistered_type_is_rejected() {
        #[derive(Serialize, Deserialize)]
        struct Ghost;
        impl ActiveMessage for Ghost {
            type Output = ();
            fn execute(self, _: &mut ExecContext<'_>) {}
        }
        let r = build(1);
        assert!(matches!(
            r.key_of::<Ghost>(),
            Err(HamError::Unregistered(_))
        ));
    }

    #[test]
    fn duplicate_registration_is_idempotent() {
        let mut b = RegistryBuilder::new();
        b.register::<Add>().register::<Add>().register::<Add>();
        let r = b.seal(0);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn corrupt_payload_is_a_codec_error() {
        let r = build(1);
        let key = r.key_of::<Add>().unwrap();
        let mem = VecMemory::new(0);
        let mut ctx = ExecContext::new(0, &mem);
        assert!(matches!(
            r.execute(key, &[1, 2, 3], &mut ctx),
            Err(HamError::Codec(_))
        ));
    }

    proptest! {
        /// Any pair of process seeds agrees on keys and results.
        #[test]
        fn prop_translation_invariant(seed_a: u64, seed_b: u64, a: u64, b: u64) {
            let host = build(seed_a);
            let target = build_reversed(seed_b);
            let (key, payload) = host.encode_message(&Mul { a, b }).unwrap();
            let mem = VecMemory::new(0);
            let mut ctx = ExecContext::new(1, &mem);
            let result = target.execute(key, &payload, &mut ctx).unwrap();
            prop_assert_eq!(
                Registry::decode_result::<Mul>(&result).unwrap(),
                a.wrapping_mul(b)
            );
        }
    }
}
