//! Compact little-endian wire codec (serde front-end).
//!
//! HAM transfers functor objects between heterogeneous binaries; the wire
//! format therefore fixes endianness and widths explicitly instead of
//! relying on in-memory layout. The format is bincode-like:
//!
//! * integers/floats: little-endian, native width;
//! * `bool`: one byte (0/1);
//! * `char`: `u32` scalar value;
//! * `str`/`bytes`/sequences/maps: `u64` length prefix + elements;
//! * `Option`: one tag byte + value;
//! * structs/tuples: fields in order, no framing;
//! * enums: `u32` variant index + payload.
//!
//! The format is *not* self-describing (`deserialize_any` errors), which
//! keeps messages minimal — the type is known from the handler key.

use crate::HamError;
use serde::de::{DeserializeOwned, IntoDeserializer};
use serde::{de, ser, Serialize};

/// Serialize `value` into a fresh byte vector.
pub fn encode<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, HamError> {
    let mut out = Vec::new();
    encode_into(value, &mut out)?;
    Ok(out)
}

/// Serialize `value` by appending to a caller-provided buffer — the
/// allocation-free path: a pooled buffer with retained capacity makes a
/// steady-state encode cost zero heap allocations. Existing contents of
/// `out` are left untouched; the value is appended.
pub fn encode_into<T: Serialize + ?Sized>(value: &T, out: &mut Vec<u8>) -> Result<(), HamError> {
    value.serialize(&mut Encoder { out })
}

/// Deserialize a `T` from `bytes`, requiring full consumption.
pub fn decode<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, HamError> {
    let mut d = Decoder { input: bytes };
    let v = T::deserialize(&mut d)?;
    if !d.input.is_empty() {
        return Err(HamError::Codec(format!(
            "{} trailing bytes after value",
            d.input.len()
        )));
    }
    Ok(v)
}

impl ser::Error for HamError {
    fn custom<T: core::fmt::Display>(msg: T) -> Self {
        HamError::Codec(msg.to_string())
    }
}

impl de::Error for HamError {
    fn custom<T: core::fmt::Display>(msg: T) -> Self {
        HamError::Codec(msg.to_string())
    }
}

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

struct Encoder<'a> {
    out: &'a mut Vec<u8>,
}

impl Encoder<'_> {
    fn put(&mut self, bytes: &[u8]) {
        self.out.extend_from_slice(bytes);
    }
}

impl ser::Serializer for &mut Encoder<'_> {
    type Ok = ();
    type Error = HamError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<(), HamError> {
        self.put(&[v as u8]);
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), HamError> {
        self.put(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i16(self, v: i16) -> Result<(), HamError> {
        self.put(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i32(self, v: i32) -> Result<(), HamError> {
        self.put(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<(), HamError> {
        self.put(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), HamError> {
        self.put(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u16(self, v: u16) -> Result<(), HamError> {
        self.put(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u32(self, v: u32) -> Result<(), HamError> {
        self.put(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<(), HamError> {
        self.put(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i128(self, v: i128) -> Result<(), HamError> {
        self.put(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u128(self, v: u128) -> Result<(), HamError> {
        self.put(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), HamError> {
        self.put(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), HamError> {
        self.put(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), HamError> {
        self.serialize_u32(v as u32)
    }
    fn serialize_str(self, v: &str) -> Result<(), HamError> {
        self.serialize_bytes(v.as_bytes())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), HamError> {
        self.put(&(v.len() as u64).to_le_bytes());
        self.put(v);
        Ok(())
    }
    fn serialize_none(self) -> Result<(), HamError> {
        self.put(&[0]);
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), HamError> {
        self.put(&[1]);
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), HamError> {
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), HamError> {
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), HamError> {
        self.serialize_u32(variant_index)
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), HamError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), HamError> {
        self.serialize_u32(variant_index)?;
        value.serialize(self)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<Self, HamError> {
        let len =
            len.ok_or_else(|| HamError::Codec("sequences need a known length on the wire".into()))?;
        self.put(&(len as u64).to_le_bytes());
        Ok(self)
    }
    fn serialize_tuple(self, _len: usize) -> Result<Self, HamError> {
        Ok(self)
    }
    fn serialize_tuple_struct(self, _name: &'static str, _len: usize) -> Result<Self, HamError> {
        Ok(self)
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, HamError> {
        self.serialize_u32(variant_index)?;
        Ok(self)
    }
    fn serialize_map(self, len: Option<usize>) -> Result<Self, HamError> {
        let len =
            len.ok_or_else(|| HamError::Codec("maps need a known length on the wire".into()))?;
        self.put(&(len as u64).to_le_bytes());
        Ok(self)
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self, HamError> {
        Ok(self)
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, HamError> {
        self.serialize_u32(variant_index)?;
        Ok(self)
    }
    fn is_human_readable(&self) -> bool {
        false
    }
}

macro_rules! forward_compound {
    ($trait:ident, $fn:ident $(, $key:ident)?) => {
        impl<'a> ser::$trait for &'a mut Encoder<'_> {
            type Ok = ();
            type Error = HamError;
            $(
                fn $key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), HamError> {
                    key.serialize(&mut **self)
                }
            )?
            fn $fn<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), HamError> {
                value.serialize(&mut **self)
            }
            fn end(self) -> Result<(), HamError> {
                Ok(())
            }
        }
    };
}

forward_compound!(SerializeSeq, serialize_element);
forward_compound!(SerializeTuple, serialize_element);
forward_compound!(SerializeTupleStruct, serialize_field);
forward_compound!(SerializeTupleVariant, serialize_field);
forward_compound!(SerializeMap, serialize_value, serialize_key);

impl ser::SerializeStruct for &mut Encoder<'_> {
    type Ok = ();
    type Error = HamError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), HamError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), HamError> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for &mut Encoder<'_> {
    type Ok = ();
    type Error = HamError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), HamError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), HamError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

struct Decoder<'de> {
    input: &'de [u8],
}

impl<'de> Decoder<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8], HamError> {
        if self.input.len() < n {
            return Err(HamError::Codec(format!(
                "unexpected end of input: need {n}, have {}",
                self.input.len()
            )));
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }

    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], HamError> {
        Ok(self.take(N)?.try_into().expect("length checked"))
    }

    fn take_len(&mut self) -> Result<usize, HamError> {
        let len = u64::from_le_bytes(self.take_array()?);
        usize::try_from(len).map_err(|_| HamError::Codec("length overflows usize".into()))
    }
}

macro_rules! de_num {
    ($fn:ident, $visit:ident, $ty:ty) => {
        fn $fn<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, HamError> {
            visitor.$visit(<$ty>::from_le_bytes(self.take_array()?))
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut Decoder<'de> {
    type Error = HamError;

    fn deserialize_any<V: de::Visitor<'de>>(self, _visitor: V) -> Result<V::Value, HamError> {
        Err(HamError::Codec(
            "wire format is not self-describing (deserialize_any)".into(),
        ))
    }

    fn deserialize_bool<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, HamError> {
        match self.take(1)?[0] {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            b => Err(HamError::Codec(format!("invalid bool byte {b}"))),
        }
    }

    de_num!(deserialize_i8, visit_i8, i8);
    de_num!(deserialize_i16, visit_i16, i16);
    de_num!(deserialize_i32, visit_i32, i32);
    de_num!(deserialize_i64, visit_i64, i64);
    de_num!(deserialize_u8, visit_u8, u8);
    de_num!(deserialize_u16, visit_u16, u16);
    de_num!(deserialize_u32, visit_u32, u32);
    de_num!(deserialize_u64, visit_u64, u64);
    de_num!(deserialize_i128, visit_i128, i128);
    de_num!(deserialize_u128, visit_u128, u128);
    de_num!(deserialize_f32, visit_f32, f32);
    de_num!(deserialize_f64, visit_f64, f64);

    fn deserialize_char<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, HamError> {
        let scalar = u32::from_le_bytes(self.take_array()?);
        let c = char::from_u32(scalar)
            .ok_or_else(|| HamError::Codec(format!("invalid char scalar {scalar:#x}")))?;
        visitor.visit_char(c)
    }

    fn deserialize_str<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, HamError> {
        let len = self.take_len()?;
        let bytes = self.take(len)?;
        let s = core::str::from_utf8(bytes)
            .map_err(|e| HamError::Codec(format!("invalid utf-8: {e}")))?;
        visitor.visit_borrowed_str(s)
    }

    fn deserialize_string<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, HamError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, HamError> {
        let len = self.take_len()?;
        visitor.visit_borrowed_bytes(self.take(len)?)
    }

    fn deserialize_byte_buf<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, HamError> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, HamError> {
        match self.take(1)?[0] {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            b => Err(HamError::Codec(format!("invalid option tag {b}"))),
        }
    }

    fn deserialize_unit<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, HamError> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: de::Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, HamError> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: de::Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, HamError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, HamError> {
        let len = self.take_len()?;
        visitor.visit_seq(Counted {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_tuple<V: de::Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, HamError> {
        visitor.visit_seq(Counted {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_tuple_struct<V: de::Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, HamError> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, HamError> {
        let len = self.take_len()?;
        visitor.visit_map(Counted {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_struct<V: de::Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, HamError> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: de::Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, HamError> {
        visitor.visit_enum(Enum { de: self })
    }

    fn deserialize_identifier<V: de::Visitor<'de>>(
        self,
        _visitor: V,
    ) -> Result<V::Value, HamError> {
        Err(HamError::Codec("identifiers are not on the wire".into()))
    }

    fn deserialize_ignored_any<V: de::Visitor<'de>>(
        self,
        _visitor: V,
    ) -> Result<V::Value, HamError> {
        Err(HamError::Codec(
            "cannot skip values in a non-self-describing format".into(),
        ))
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct Counted<'a, 'de> {
    de: &'a mut Decoder<'de>,
    remaining: usize,
}

impl<'de> de::SeqAccess<'de> for Counted<'_, 'de> {
    type Error = HamError;
    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, HamError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'de> de::MapAccess<'de> for Counted<'_, 'de> {
    type Error = HamError;
    fn next_key_seed<K: de::DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, HamError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn next_value_seed<V: de::DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, HamError> {
        seed.deserialize(&mut *self.de)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct Enum<'a, 'de> {
    de: &'a mut Decoder<'de>,
}

impl<'de> de::EnumAccess<'de> for Enum<'_, 'de> {
    type Error = HamError;
    type Variant = Self;
    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self), HamError> {
        let idx = u32::from_le_bytes(self.de.take_array()?);
        let val = seed.deserialize(idx.into_deserializer())?;
        Ok((val, self))
    }
}

impl<'de> de::VariantAccess<'de> for Enum<'_, 'de> {
    type Error = HamError;
    fn unit_variant(self) -> Result<(), HamError> {
        Ok(())
    }
    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, HamError> {
        seed.deserialize(self.de)
    }
    fn tuple_variant<V: de::Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, HamError> {
        de::Deserializer::deserialize_tuple(self.de, len, visitor)
    }
    fn struct_variant<V: de::Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, HamError> {
        de::Deserializer::deserialize_tuple(self.de, fields.len(), visitor)
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    fn round_trip<T: Serialize + DeserializeOwned + PartialEq + core::fmt::Debug>(v: &T) {
        let bytes = encode(v).unwrap();
        let back: T = decode(&bytes).unwrap();
        assert_eq!(&back, v);
    }

    #[test]
    fn primitives() {
        round_trip(&true);
        round_trip(&false);
        round_trip(&42u8);
        round_trip(&-7i16);
        round_trip(&0xDEAD_BEEFu32);
        round_trip(&i64::MIN);
        round_trip(&u64::MAX);
        round_trip(&i128::MIN);
        round_trip(&u128::MAX);
        round_trip(&3.5f32);
        round_trip(&core::f64::consts::PI);
        round_trip(&'λ');
        round_trip(&());
    }

    #[test]
    fn strings_and_bytes() {
        round_trip(&String::from("heterogeneous active messages"));
        round_trip(&String::new());
        round_trip(&vec![1u8, 2, 3]);
    }

    #[test]
    fn options_and_results() {
        round_trip(&Some(5u32));
        round_trip(&Option::<u32>::None);
        round_trip(&Ok::<u32, String>(1));
        round_trip(&Err::<u32, String>("boom".into()));
    }

    #[test]
    fn collections() {
        round_trip(&vec![1u64, 2, 3, 4]);
        round_trip(&Vec::<f64>::new());
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u32);
        m.insert("b".to_string(), 2);
        round_trip(&m);
        round_trip(&(1u8, String::from("x"), 2.5f64));
        round_trip(&[7u32; 4]);
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Functor {
        a: u64,
        b: f64,
        name: String,
        data: Vec<f32>,
        opt: Option<i32>,
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    enum Kind {
        Unit,
        New(u32),
        Tuple(u8, u8),
        Struct { x: f64, y: f64 },
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Newtype(u64);

    #[test]
    fn structs_and_enums() {
        round_trip(&Functor {
            a: 1,
            b: 2.5,
            name: "inner_product".into(),
            data: vec![1.0, 2.0],
            opt: Some(-3),
        });
        round_trip(&Kind::Unit);
        round_trip(&Kind::New(9));
        round_trip(&Kind::Tuple(1, 2));
        round_trip(&Kind::Struct { x: 1.0, y: -1.0 });
        round_trip(&Newtype(77));
    }

    #[test]
    fn layout_is_fixed_little_endian() {
        assert_eq!(encode(&0x0102_0304u32).unwrap(), vec![4, 3, 2, 1]);
        assert_eq!(encode(&true).unwrap(), vec![1]);
        let s = encode(&String::from("ab")).unwrap();
        assert_eq!(s, vec![2, 0, 0, 0, 0, 0, 0, 0, b'a', b'b']);
        // Struct = concatenated fields, no framing.
        #[derive(Serialize)]
        struct P {
            x: u16,
            y: u16,
        }
        assert_eq!(encode(&P { x: 1, y: 2 }).unwrap(), vec![1, 0, 2, 0]);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode(&5u32).unwrap();
        bytes.push(0);
        assert!(matches!(decode::<u32>(&bytes), Err(HamError::Codec(_))));
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = encode(&5u64).unwrap();
        assert!(matches!(
            decode::<u64>(&bytes[..4]),
            Err(HamError::Codec(_))
        ));
    }

    #[test]
    fn invalid_tags_rejected() {
        assert!(decode::<bool>(&[7]).is_err());
        assert!(decode::<Option<u8>>(&[9]).is_err());
        // Char scalar beyond Unicode.
        assert!(decode::<char>(&0x00FF_FFFFu32.to_le_bytes()).is_err());
        // Invalid UTF-8 string.
        let bad = [1, 0, 0, 0, 0, 0, 0, 0, 0xFF];
        assert!(decode::<String>(&bad).is_err());
    }

    proptest! {
        #[test]
        fn prop_round_trip_u64(v: u64) { round_trip(&v); }

        #[test]
        fn prop_round_trip_f64(v: f64) {
            let bytes = encode(&v).unwrap();
            let back: f64 = decode(&bytes).unwrap();
            prop_assert_eq!(v.to_bits(), back.to_bits());
        }

        #[test]
        fn prop_round_trip_string(s: String) { round_trip(&s); }

        #[test]
        fn prop_round_trip_vec(v: Vec<u32>) { round_trip(&v); }

        #[test]
        fn prop_round_trip_nested(v: Vec<(Option<String>, Vec<i16>)>) { round_trip(&v); }

        /// Random byte soup either decodes to a value that re-encodes to a
        /// prefix-compatible form, or errors — never panics.
        #[test]
        fn prop_decode_never_panics(bytes: Vec<u8>) {
            let _ = decode::<Vec<u64>>(&bytes);
            let _ = decode::<(bool, String)>(&bytes);
            let _ = decode::<Option<f64>>(&bytes);
        }
    }
}
