//! The fixed on-wire message header.
//!
//! Every active message travels as `header ‖ payload`. The header is 32
//! bytes, little-endian, 8-aligned so flag words next to it stay aligned:
//!
//! ```text
//! offset  size  field
//!      0     8  handler_key   (u64)  globally valid message type id
//!      8     4  payload_len   (u32)
//!     12     2  kind          (u16)  offload / result / control
//!     14     2  reply_slot    (u16)  piggybacked buffer bookkeeping
//!     16     8  corr          (u64)  offload correlation id
//!     24     8  seq           (u64)  per-channel sequence number
//! ```
//!
//! `corr` is the telemetry correlation id (`trace::OffloadId`) of the
//! offload this message belongs to, carried in-band so the target side can
//! attribute its work to the same span tree the host started (0 = not part
//! of an offload). Virtual timestamps travel out-of-band through the
//! protocol flags, not here. `reply_slot` carries the "which buffer to
//! send the result to" bookkeeping the paper piggybacks onto messages and
//! flags (§III-D).

use crate::registry::HandlerKey;
use crate::HamError;

/// Size of the encoded header in bytes.
pub const HEADER_BYTES: usize = 32;

/// Message kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgKind {
    /// Host → target: execute this functor.
    Offload,
    /// Target → host: a kernel's result.
    Result,
    /// Control traffic (termination, setup).
    Control,
    /// Host → target: a coalesced envelope of several offload messages.
    /// The payload is `u32 count` followed by `count` sub-messages, each
    /// a full 32-byte header (kind `Offload`, its own `seq`) ‖ payload.
    /// One result message answers the whole batch.
    Batch,
}

impl MsgKind {
    fn to_u16(self) -> u16 {
        match self {
            MsgKind::Offload => 1,
            MsgKind::Result => 2,
            MsgKind::Control => 3,
            MsgKind::Batch => 4,
        }
    }

    fn from_u16(v: u16) -> Result<Self, HamError> {
        match v {
            1 => Ok(MsgKind::Offload),
            2 => Ok(MsgKind::Result),
            3 => Ok(MsgKind::Control),
            4 => Ok(MsgKind::Batch),
            other => Err(HamError::Wire(format!("invalid message kind {other}"))),
        }
    }
}

/// The decoded header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MsgHeader {
    /// Message type id (meaningless for results/control).
    pub handler_key: HandlerKey,
    /// Payload length following the header.
    pub payload_len: u32,
    /// Offload / result / control.
    pub kind: MsgKind,
    /// Which send-buffer slot the result should use (piggybacked
    /// bookkeeping).
    pub reply_slot: u16,
    /// Telemetry correlation id of the offload this message serves
    /// (0 when the message is not attributable to one).
    pub corr: u64,
    /// Per-channel sequence number.
    pub seq: u64,
}

impl MsgHeader {
    /// Encode into the fixed 32-byte layout.
    pub fn encode(&self) -> [u8; HEADER_BYTES] {
        let mut out = [0u8; HEADER_BYTES];
        out[0..8].copy_from_slice(&self.handler_key.0.to_le_bytes());
        out[8..12].copy_from_slice(&self.payload_len.to_le_bytes());
        out[12..14].copy_from_slice(&self.kind.to_u16().to_le_bytes());
        out[14..16].copy_from_slice(&self.reply_slot.to_le_bytes());
        out[16..24].copy_from_slice(&self.corr.to_le_bytes());
        out[24..32].copy_from_slice(&self.seq.to_le_bytes());
        out
    }

    /// Decode from a buffer beginning with a header.
    pub fn decode(bytes: &[u8]) -> Result<Self, HamError> {
        if bytes.len() < HEADER_BYTES {
            return Err(HamError::Wire(format!(
                "header needs {HEADER_BYTES} bytes, got {}",
                bytes.len()
            )));
        }
        let word = |r: core::ops::Range<usize>| -> u64 {
            let mut b = [0u8; 8];
            b[..r.len()].copy_from_slice(&bytes[r]);
            u64::from_le_bytes(b)
        };
        Ok(MsgHeader {
            handler_key: HandlerKey(word(0..8)),
            payload_len: word(8..12) as u32,
            kind: MsgKind::from_u16(word(12..14) as u16)?,
            reply_slot: word(14..16) as u16,
            corr: word(16..24),
            seq: word(24..32),
        })
    }

    /// Total wire size of a message with this header.
    pub fn wire_len(&self) -> usize {
        HEADER_BYTES + self.payload_len as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> MsgHeader {
        MsgHeader {
            handler_key: HandlerKey(7),
            payload_len: 48,
            kind: MsgKind::Offload,
            reply_slot: 3,
            corr: 123_456_789,
            seq: 42,
        }
    }

    #[test]
    fn round_trip() {
        let h = sample();
        let bytes = h.encode();
        assert_eq!(MsgHeader::decode(&bytes).unwrap(), h);
        assert_eq!(h.wire_len(), HEADER_BYTES + 48);
    }

    #[test]
    fn decode_tolerates_trailing_payload() {
        let h = sample();
        let mut buf = h.encode().to_vec();
        buf.extend_from_slice(&[9; 48]);
        assert_eq!(MsgHeader::decode(&buf).unwrap(), h);
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(matches!(
            MsgHeader::decode(&[0; 31]),
            Err(HamError::Wire(_))
        ));
    }

    #[test]
    fn bad_kind_rejected() {
        let mut bytes = sample().encode();
        bytes[12] = 0xFF;
        bytes[13] = 0xFF;
        assert!(matches!(MsgHeader::decode(&bytes), Err(HamError::Wire(_))));
    }

    #[test]
    fn all_kinds_round_trip() {
        for kind in [
            MsgKind::Offload,
            MsgKind::Result,
            MsgKind::Control,
            MsgKind::Batch,
        ] {
            let h = MsgHeader { kind, ..sample() };
            assert_eq!(MsgHeader::decode(&h.encode()).unwrap().kind, kind);
        }
    }

    proptest! {
        #[test]
        fn prop_round_trip(key: u64, len: u32, slot: u16, corr: u64, seq: u64, k in 1u16..5) {
            let h = MsgHeader {
                handler_key: HandlerKey(key),
                payload_len: len,
                kind: MsgKind::from_u16(k).unwrap(),
                reply_slot: slot,
                corr,
                seq,
            };
            prop_assert_eq!(MsgHeader::decode(&h.encode()).unwrap(), h);
        }
    }
}
