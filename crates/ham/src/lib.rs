//! # ham — Heterogeneous Active Messages
//!
//! The messaging layer of HAM-Offload (paper §I-A, Fig. 6). An *active
//! message* carries an action: a typed functor that the receiving process
//! deserialises and executes. Heterogeneity means sender and receiver are
//! different binaries (here: different simulated processes with different
//! local handler addresses), so function pointers cannot travel — instead
//! each message type gets a **handler key** that is valid across binaries
//! and translates in O(1) to the local handler address.
//!
//! Components:
//!
//! * [`codec`] — compact little-endian wire format (serde front-end);
//! * [`message`] — the [`ActiveMessage`] trait and execution context;
//! * [`registry`] — per-process handler tables with the sorted-type-name
//!   key construction of the paper (`typeid` + lexicographic order);
//! * [`wire`] — the fixed message header (key, length, kind, timestamp);
//! * [`ham_kernel!`]/[`f2f!`] — the user-facing sugar mirroring the
//!   paper's `f2f()` function-to-functor conversion.

#![warn(missing_docs)]
#![deny(unsafe_code)]

// Let `ham::...` paths resolve inside this crate too, so the macros can
// reference the serde re-export uniformly from anywhere.
extern crate self as ham;

#[doc(hidden)]
pub use serde;

pub mod codec;
pub mod message;
pub mod registry;
pub mod wire;

#[macro_use]
mod macros;

pub use message::{ActiveMessage, ExecContext, TargetMemory};
pub use registry::{HandlerKey, Registry, RegistryBuilder};
pub use wire::MsgHeader;

/// Errors of the active-message layer.
#[derive(Clone, Debug, PartialEq)]
pub enum HamError {
    /// (De)serialisation failure.
    Codec(String),
    /// A handler key with no local translation — the binaries disagree
    /// on the registered message set.
    UnknownKey(u64),
    /// A type was used before registration.
    Unregistered(&'static str),
    /// Target-memory access failure inside a handler.
    Mem(String),
    /// Malformed wire data.
    Wire(String),
}

impl core::fmt::Display for HamError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HamError::Codec(m) => write!(f, "codec error: {m}"),
            HamError::UnknownKey(k) => write!(f, "unknown handler key {k}"),
            HamError::Unregistered(t) => write!(f, "message type not registered: {t}"),
            HamError::Mem(m) => write!(f, "target memory error: {m}"),
            HamError::Wire(m) => write!(f, "wire format error: {m}"),
        }
    }
}

impl std::error::Error for HamError {}
