//! Whole-machine tests on the A300-8 topology: all eight VEs, both
//! sockets, concurrent traffic.

use aurora_workloads::kernels::{monte_carlo_pi, vec_sum, whoami};
use ham::f2f;
use ham_aurora_repro::{dma_offload, NodeId};
use ham_backend_dma::DmaBackend;
use ham_backend_veo::ProtocolConfig;
use ham_offload::Offload;
use std::sync::Arc;
use veos_sim::{AuroraMachine, MachineConfig};

#[test]
fn all_eight_ves_respond() {
    let o = dma_offload(8, aurora_workloads::register_all);
    assert_eq!(o.num_nodes(), 9);
    let futures: Vec<_> = (1..=8u16)
        .map(|n| o.async_(NodeId(n), f2f!(whoami)).unwrap())
        .collect();
    let nodes: Vec<u16> = futures.into_iter().map(|f| f.get().unwrap()).collect();
    assert_eq!(nodes, (1..=8).collect::<Vec<u16>>());
    o.shutdown();
}

#[test]
fn per_ve_memory_is_isolated() {
    let o = dma_offload(4, aurora_workloads::register_all);
    let bufs: Vec<_> = (1..=4u16)
        .map(|n| {
            let b = o.allocate::<f64>(NodeId(n), 4).unwrap();
            o.put(&[n as f64; 4], b).unwrap();
            (n, b)
        })
        .collect();
    for (n, b) in bufs {
        let sum = o.sync(NodeId(n), f2f!(vec_sum, b.addr(), 4)).unwrap();
        assert_eq!(sum, 4.0 * n as f64, "VE {n} sees its own data");
    }
    o.shutdown();
}

#[test]
fn fan_out_fan_in_aggregation() {
    let o = dma_offload(8, aurora_workloads::register_all);
    let futures: Vec<_> = (1..=8u16)
        .map(|n| {
            o.async_(NodeId(n), f2f!(monte_carlo_pi, n as u64, 20_000))
                .unwrap()
        })
        .collect();
    let mean: f64 = futures.into_iter().map(|f| f.get().unwrap()).sum::<f64>() / 8.0;
    assert!((mean - std::f64::consts::PI).abs() < 0.05, "pi ~ {mean}");
    o.shutdown();
}

#[test]
fn ves_behind_the_remote_socket_still_work() {
    // Host pinned to socket 0 offloading to VE 7 (socket 1's switch).
    let machine = AuroraMachine::a300_8(MachineConfig {
        hbm_bytes: 16 << 20,
        vh_bytes: 32 << 20,
        ..Default::default()
    });
    let o = Offload::new(DmaBackend::spawn(
        Arc::clone(&machine),
        0,
        &[7],
        ProtocolConfig::default(),
        aurora_workloads::register_all,
    ));
    assert_eq!(o.sync(NodeId(1), f2f!(whoami)).unwrap(), 1);
    // The descriptor names the real device index.
    let d = o.get_node_descriptor(NodeId(1)).unwrap();
    assert!(d.name.contains("VE7"), "{}", d.name);
    o.shutdown();
}

#[test]
fn concurrent_hosts_on_different_ves_share_the_machine() {
    // Two independent HAM-Offload applications (one per socket) on one
    // machine, each with its own VE — as multi-tenant A300-8 usage.
    let machine = AuroraMachine::a300_8(MachineConfig {
        hbm_bytes: 16 << 20,
        vh_bytes: 32 << 20,
        ..Default::default()
    });
    let o1 = Offload::new(DmaBackend::spawn(
        Arc::clone(&machine),
        0,
        &[0],
        ProtocolConfig::default(),
        aurora_workloads::register_all,
    ));
    let o2 = Offload::new(DmaBackend::spawn(
        Arc::clone(&machine),
        1,
        &[4],
        ProtocolConfig::default(),
        aurora_workloads::register_all,
    ));
    std::thread::scope(|s| {
        let h1 = s.spawn(|| {
            for _ in 0..20 {
                assert_eq!(o1.sync(NodeId(1), f2f!(whoami)).unwrap(), 1);
            }
        });
        let h2 = s.spawn(|| {
            for _ in 0..20 {
                assert_eq!(o2.sync(NodeId(1), f2f!(whoami)).unwrap(), 1);
            }
        });
        h1.join().unwrap();
        h2.join().unwrap();
    });
    o1.shutdown();
    o2.shutdown();
}
