//! Determinism of the always-on observability layer.
//!
//! Two runs of the same serial scenario (same seed, same kill) must
//! produce bit-identical latency histogram buckets and the same health
//! event sequence. Serial `sync` offloads advance virtual time
//! deterministically (see `trace_and_determinism.rs`), so the
//! completion latencies — and therefore every log₂ bucket count — are
//! a pure function of the scenario. Health events are compared as
//! `(node, kind)` sequences: correlation ids draw from a process-global
//! counter and event timestamps can shift with wall-clock-raced polls,
//! so neither is part of the determinism contract.

use aurora_workloads::kernels::{compute_burn, whoami};
use ham::f2f;
use ham_aurora_repro::{
    dma_offload_batched, dma_offload_with_faults, BatchConfig, FaultPlan, NodeId,
};

struct Observed {
    aggregate: Vec<u64>,
    per_node: Vec<(u16, Vec<u64>)>,
    events: Vec<(u16, &'static str)>,
}

fn run() -> Observed {
    let plan = FaultPlan::builder(42).build(); // seeded, zero-rate: kills only
    let o = dma_offload_with_faults(2, plan, None, aurora_workloads::register_all);

    // Warm both targets, then a fixed serial workload.
    for _ in 0..3 {
        for n in 1..=2u16 {
            o.sync(NodeId(n), f2f!(whoami)).unwrap();
        }
    }
    for i in 0..20u16 {
        o.sync(NodeId(1 + i % 2), f2f!(whoami)).unwrap();
    }

    // Kill target 2 and ride an offload into the eviction so the
    // Eviction event is on the books before we snapshot.
    o.kill_target(NodeId(2)).unwrap();
    while o
        .backend()
        .channel(NodeId(2))
        .expect("channel")
        .eviction()
        .is_none()
    {
        let _ = o.sync(NodeId(2), f2f!(whoami));
    }
    // Survivor keeps serving.
    for _ in 0..5 {
        o.sync(NodeId(1), f2f!(whoami)).unwrap();
    }

    let snap = o.metrics_snapshot();
    let observed = Observed {
        aggregate: snap.latency_hist.buckets().to_vec(),
        per_node: snap
            .per_node
            .iter()
            .map(|n| (n.node, n.latency_hist.buckets().to_vec()))
            .collect(),
        events: o
            .backend()
            .metrics()
            .health()
            .events()
            .iter()
            .map(|e| (e.node, e.kind.name()))
            .collect(),
    };
    o.shutdown();
    observed
}

#[test]
fn histograms_and_event_log_replay_bit_identically() {
    let a = run();
    let b = run();
    assert_eq!(
        a.aggregate, b.aggregate,
        "aggregate latency buckets must replay"
    );
    assert_eq!(a.per_node, b.per_node, "per-target buckets must replay");
    assert_eq!(a.events, b.events, "health event sequence must replay");

    // And the scenario actually exercised the layer: completions were
    // recorded on both targets, and the kill shows up as an injected
    // fault followed (eventually) by the eviction.
    assert!(a.aggregate.iter().sum::<u64>() >= 31);
    assert_eq!(a.per_node.len(), 2);
    assert!(
        a.events.contains(&(2, "fault_injected")) && a.events.contains(&(2, "eviction")),
        "events: {:?}",
        a.events
    );
}

/// The lane scheduler must replay too. All offloads go to *one* target
/// and arrive at the device as a single carrier message, so the whole
/// member set is lane-scheduled in one window and published behind one
/// completion barrier — per-lane placement, the steal count and the
/// completion timeline are a pure function of the envelope. (With two
/// targets the host's wait loop can settle one target's members a
/// sweep round before the other's, a wall-clock race that shifts the
/// host-clock join each latency is measured against.)
#[test]
fn lane_schedule_and_steals_replay_bit_identically() {
    struct LaneObserved {
        buckets: Vec<u64>,
        lanes: Vec<(u16, u64, u64)>,
        steals: u64,
        events: Vec<(u16, &'static str)>,
    }

    fn run() -> LaneObserved {
        let o = dma_offload_batched(1, BatchConfig::up_to(32), aurora_workloads::register_all);
        // Twenty-four members: more work items than the eight default
        // lanes. The first two members are an order of magnitude
        // heavier, so the light members queued behind them on the same
        // lanes must be stolen by idle peers.
        let futs: Vec<_> = (0..24u16)
            .map(|i| {
                let flops = if i < 2 { 5_000_000u64 } else { 200_000 };
                o.async_(NodeId(1), f2f!(compute_burn, flops)).unwrap()
            })
            .collect();
        for r in o.wait_all(futs) {
            r.unwrap();
        }
        let snap = o.metrics_snapshot();
        let observed = LaneObserved {
            buckets: snap.latency_hist.buckets().to_vec(),
            lanes: snap
                .lanes
                .iter()
                .map(|l| (l.lane, l.tasks, l.busy_ps))
                .collect(),
            steals: snap.steals,
            events: o
                .backend()
                .metrics()
                .health()
                .events()
                .iter()
                .map(|e| (e.node, e.kind.name()))
                .collect(),
        };
        o.shutdown();
        observed
    }

    let a = run();
    let b = run();
    assert_eq!(a.buckets, b.buckets, "completion timeline must replay");
    assert_eq!(a.lanes, b.lanes, "per-lane placement must replay");
    assert_eq!(a.steals, b.steals, "steal count must replay");
    assert_eq!(a.events, b.events, "health event sequence must replay");

    // And the scenario exercised the runtime: every member executed on
    // a lane, the work spread beyond one lane, and something stole.
    assert_eq!(a.lanes.iter().map(|(_, t, _)| t).sum::<u64>(), 24);
    assert!(a.lanes.len() > 1, "lanes: {:?}", a.lanes);
    assert!(a.steals > 0, "a 24-member carrier on 8 lanes must steal");
}
