//! Golden-file test for the metrics exposition surface.
//!
//! Builds a `BackendMetrics` register set by hand (fixed counter bumps,
//! fixed virtual-time latencies — no runtime, no threads, nothing
//! racy), renders both exposition formats, and compares them byte for
//! byte against `tests/golden/metrics.{prom,json}`. The formats are a
//! public contract: a scrape pipeline parses them, so an accidental
//! rename or reordering must fail loudly here, not in a dashboard.
//!
//! To bless an intentional format change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test exposition_golden
//! ```

use aurora_sim_core::{BackendMetrics, SimTime};

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, rendered).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e}; run with UPDATE_GOLDEN=1 to create", name));
    assert_eq!(
        rendered, want,
        "{name} drifted from the golden file; if the change is intentional, \
         re-bless with UPDATE_GOLDEN=1 and review the diff"
    );
}

/// A fixed, fully deterministic register load: two targets with
/// different latency profiles, one flush, one retry, one eviction, a
/// put/get pair and a live allocation.
fn build() -> BackendMetrics {
    let m = BackendMetrics::new();
    for i in 0..4u64 {
        m.on_post(64 + i);
    }
    m.on_frame(3);
    m.on_poll(true);
    m.on_poll(false);
    m.on_poll(false);
    m.on_complete_on(1, SimTime::from_us(6));
    m.on_complete_on(1, SimTime::from_us(8));
    m.on_complete_on(2, SimTime::from_us(120));
    m.on_flush(SimTime::from_us(2));
    // Adaptive batching controller: one widen, two narrows, one flush
    // forced by the latency-SLO age bound.
    m.on_batch_widen();
    m.on_batch_narrow();
    m.on_batch_narrow();
    m.on_slo_flush();
    m.on_resend();
    m.on_retry_delay(SimTime::from_us(40));
    m.on_timeout();
    m.on_evict();
    // Cluster-TCP link supervisor: two reconnect attempts, one of
    // which healed the link and replayed five in-flight frames.
    m.on_reconnect_attempt();
    m.on_reconnect_attempt();
    m.on_reconnect();
    m.on_replay(5);
    m.on_put(4096);
    m.on_get(512);
    m.on_alloc(1, 0x1000, 1 << 20);
    m.on_alloc(1, 0x2000, 1 << 10);
    m.on_free(1, 0x2000);
    // Device-runtime lane registers: two lanes served work, one task
    // was stolen from a neighbour's deque.
    let lanes = m.lane_stats();
    lanes.on_task(0, 1_000);
    lanes.on_task(0, 500);
    lanes.on_task(1, 2_000);
    lanes.on_steal();
    m
}

#[test]
fn prometheus_text_matches_golden() {
    check("metrics.prom", &build().snapshot().to_prometheus_text());
}

#[test]
fn json_matches_golden() {
    let json = build().snapshot().to_json();
    // Cheap structural sanity on top of the byte comparison: the
    // exposition must stay parseable JSON whatever the golden says.
    let v = aurora_telemetry::json::parse(&json).expect("valid JSON");
    assert_eq!(
        v.get("counters")
            .and_then(|c| c.get("completions"))
            .and_then(|c| c.as_u64()),
        Some(3)
    );
    check("metrics.json", &json);
}
