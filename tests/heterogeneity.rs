//! The heterogeneous-binaries story (paper Fig. 6): the VH and VE
//! processes are distinct "binaries" with different local handler
//! addresses, reconciled only by sorted-type-name handler keys.

use ham::registry::HandlerKey;
use ham::{ExecContext, RegistryBuilder};
use ham_backend_veo::core::{AuroraCore, HOST_SEED, VE_SEED_BASE};
use std::sync::Arc;

ham::ham_kernel! {
    pub fn alpha(_ctx, x: u64) -> u64 { x + 1 }
}
ham::ham_kernel! {
    pub fn beta(_ctx, x: u64) -> u64 { x + 2 }
}
ham::ham_kernel! {
    pub fn gamma(_ctx, x: u64) -> u64 { x + 3 }
}

fn registrar(b: &mut RegistryBuilder) {
    b.register::<alpha>();
    b.register::<beta>();
    b.register::<gamma>();
}

#[test]
fn host_and_ve_registries_disagree_on_addresses_but_agree_on_keys() {
    let reg: Arc<ham_offload::backend::Registrar> = Arc::new(registrar);
    let host = AuroraCore::build_registry(&reg, HOST_SEED);
    let ve = AuroraCore::build_registry(&reg, VE_SEED_BASE + 1);

    assert_eq!(host.names(), ve.names(), "shared sorted table layout");
    let mut any_address_differs = false;
    for k in 0..host.len() as u64 {
        let key = HandlerKey(k);
        if host.address_of(key).unwrap() != ve.address_of(key).unwrap() {
            any_address_differs = true;
        }
    }
    assert!(
        any_address_differs,
        "the two 'binaries' must have different local code addresses"
    );
}

#[test]
fn registration_order_does_not_matter() {
    // The same kernels registered in any order produce the same keys —
    // the lexicographic-sort trick of §III-E.
    let mut fwd = RegistryBuilder::new();
    fwd.register::<alpha>()
        .register::<beta>()
        .register::<gamma>();
    let fwd = fwd.seal(1);
    let mut rev = RegistryBuilder::new();
    rev.register::<gamma>()
        .register::<beta>()
        .register::<alpha>();
    let rev = rev.seal(2);
    assert_eq!(
        fwd.key_of::<alpha>().unwrap(),
        rev.key_of::<alpha>().unwrap()
    );
    assert_eq!(fwd.key_of::<beta>().unwrap(), rev.key_of::<beta>().unwrap());
    assert_eq!(
        fwd.key_of::<gamma>().unwrap(),
        rev.key_of::<gamma>().unwrap()
    );
}

#[test]
fn messages_encoded_by_one_binary_execute_in_another() {
    let reg: Arc<ham_offload::backend::Registrar> = Arc::new(registrar);
    let host = AuroraCore::build_registry(&reg, HOST_SEED);
    let ve = AuroraCore::build_registry(&reg, VE_SEED_BASE + 7);

    let (key, payload) = host.encode_message(&ham::f2f!(beta, 40)).unwrap();
    let mem = ham::message::VecMemory::new(0);
    let mut ctx = ExecContext::new(1, &mem);
    let result = ve.execute(key, &payload, &mut ctx).unwrap();
    assert_eq!(ham::Registry::decode_result::<beta>(&result).unwrap(), 42);
}

#[test]
fn mismatched_registration_sets_fail_loudly() {
    // A key from a richer "binary" has no translation in a poorer one —
    // the failure mode HAM's same-source rule prevents.
    let mut rich = RegistryBuilder::new();
    rich.register::<alpha>()
        .register::<beta>()
        .register::<gamma>();
    let rich = rich.seal(1);
    let mut poor = RegistryBuilder::new();
    poor.register::<alpha>();
    let poor = poor.seal(2);

    let key = rich.key_of::<gamma>().unwrap();
    let mem = ham::message::VecMemory::new(0);
    let mut ctx = ExecContext::new(1, &mem);
    let err = poor.execute(key, &[], &mut ctx).unwrap_err();
    assert!(matches!(err, ham::HamError::UnknownKey(_)));
}
