//! Fig. 9's headline ratio, measured across backend crates: the DMA
//! protocol's empty offload is 70.8× cheaper than the VEO protocol's.
//! (Lives here because `ham-backend-dma` no longer depends on
//! `ham-backend-veo` — backends only share the channel core and the
//! `aurora-proto` host core.)

use ham::f2f;
use ham_backend_dma::DmaBackend;
use ham_backend_veo::VeoBackend;
use ham_offload::types::NodeId;
use ham_offload::Offload;
use std::sync::Arc;
use veos_sim::{AuroraMachine, MachineConfig};

ham::ham_kernel! {
    pub fn empty(_ctx) -> () {}
}

fn machine() -> Arc<AuroraMachine> {
    AuroraMachine::small(
        1,
        MachineConfig {
            hbm_bytes: 16 << 20,
            vh_bytes: 32 << 20,
            ..Default::default()
        },
    )
}

/// The paper's methodology (§V): warm-up iterations, then the mean over
/// many repetitions.
fn mean_offload_us(o: &Offload, reps: u32) -> f64 {
    for _ in 0..10 {
        o.sync(NodeId(1), f2f!(empty)).unwrap();
    }
    let t0 = o.backend().host_clock().now();
    for _ in 0..reps {
        o.sync(NodeId(1), f2f!(empty)).unwrap();
    }
    (o.backend().host_clock().now() - t0).as_us_f64() / reps as f64
}

#[test]
fn dma_is_70x_cheaper_than_veo_backend() {
    let dma = Offload::new(DmaBackend::spawn(
        machine(),
        0,
        &[0],
        Default::default(),
        |b| {
            b.register::<empty>();
        },
    ));
    let veo = Offload::new(VeoBackend::spawn(
        machine(),
        0,
        &[0],
        Default::default(),
        |b| {
            b.register::<empty>();
        },
    ));
    let dma_cost = mean_offload_us(&dma, 50);
    let veo_cost = mean_offload_us(&veo, 50);
    let ratio = veo_cost / dma_cost;
    assert!((ratio - 70.8).abs() / 70.8 < 0.06, "ratio = {ratio}");
    dma.shutdown();
    veo.shutdown();
}
