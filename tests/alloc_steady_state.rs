//! Counting-allocator proof of the zero-copy frame path: once the frame
//! pool and the channel core's tables are warm, a full post → flush →
//! send → result → complete cycle performs **zero** heap allocations.

use ham::registry::HandlerKey;
use ham_aurora_repro::sim_core::SimTime;
use ham_offload::chan::{BatchConfig, ChannelCore, FlushPrep, Stage};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Wraps the system allocator and counts every allocation. Frees are
/// not counted: the steady-state claim is about *new* heap traffic.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

std::thread_local! {
    /// Counting is scoped to the measuring thread: the libtest main
    /// thread blocks on a channel while a test runs, and the *first*
    /// time it actually parks (i.e. whenever a test is slow enough,
    /// which depends on machine load) it lazily allocates its parker —
    /// a process-wide counter turns that into a flaky failure. Every
    /// measured path here runs synchronously on the test's own thread,
    /// so a per-thread window loses no coverage. `const`-initialised:
    /// accessing it never allocates, even inside the allocator.
    static IN_WINDOW: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn bump() {
    if IN_WINDOW.try_with(std::cell::Cell::get).unwrap_or(false) {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
    }
}

/// Run `f` with this thread's allocations counted; returns `f()`'s
/// value and how many heap allocations it performed.
fn counted<R>(f: impl FnOnce() -> R) -> (R, u64) {
    IN_WINDOW.with(|w| w.set(true));
    let before = ALLOCS.load(Ordering::SeqCst);
    let r = f();
    let after = ALLOCS.load(Ordering::SeqCst);
    IN_WINDOW.with(|w| w.set(false));
    (r, after - before)
}

#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// The measuring tests must not overlap: each takes this gate for its
/// whole body. One failing test must not poison the others' gate, so
/// acquisition shrugs off poisoning.
static GATE: Mutex<()> = Mutex::new(());

fn gate() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

const BATCH: usize = 8;
const KEY: HandlerKey = HandlerKey(3);
const PAYLOAD: [u8; 24] = [5u8; 24];
/// One member's framed result: `frame_result(Ok([9, 9]))`.
const PART: [u8; 3] = [0, 9, 9];

/// One steady-state cycle: stage a full batch, flush it, pretend the
/// transport sent it, deposit the combined result, drain every member
/// completion. All buffers come from (and return to) the frame pool.
fn cycle(chan: &ChannelCore) {
    let mut seqs = [0u64; BATCH];
    for (i, slot) in seqs.iter_mut().enumerate() {
        match chan.stage(KEY, &PAYLOAD, i as u64, SimTime::ZERO) {
            Stage::Staged { seq, .. } => *slot = seq,
            other => panic!("stage refused: {other:?}"),
        }
    }
    let f = match chan.take_flush() {
        FlushPrep::Ready(f) => f,
        other => panic!("flush refused: {other:?}"),
    };
    let carrier = f.res.seq;
    assert_eq!(carrier, seqs[BATCH - 1], "carrier is the last member");
    chan.note_sent(carrier, &f.header, f.frame);

    // The target's combined answer, framed by hand into a pooled buffer:
    // frame_result(Ok(count ‖ count × [seq ‖ len ‖ part])).
    let mut body = chan.pool().checkout();
    body.push(0);
    body.extend_from_slice(&(BATCH as u32).to_le_bytes());
    for &s in &seqs {
        body.extend_from_slice(&s.to_le_bytes());
        body.extend_from_slice(&(PART.len() as u32).to_le_bytes());
        body.extend_from_slice(&PART);
    }
    chan.deposit_frame(carrier, body);

    for &s in &seqs {
        let done = chan
            .take_completed(s)
            .expect("member completion parked")
            .expect("member result ok");
        assert_eq!(done.as_slice(), &PART);
    }
    assert_eq!(chan.in_flight(), 0);
}

#[test]
fn steady_state_batched_cycle_allocates_nothing() {
    let _gate = gate();
    let chan = ChannelCore::bounded(8, 8, 4096).with_batching(BatchConfig::up_to(BATCH));
    // Warm-up: fills the frame pool, the seq freelist, and the hash
    // tables' capacity.
    for _ in 0..32 {
        cycle(&chan);
    }
    let ((), allocs) = counted(|| {
        for _ in 0..64 {
            cycle(&chan);
        }
    });
    assert_eq!(
        allocs, 0,
        "steady-state post→complete must not touch the heap"
    );
}

/// The self-tuning dataplane's warm path is heap-silent too: a
/// controller tick (histogram snapshot, window delta, p99 walk,
/// decision) and the sweep's SLO age check are integer math on stack
/// arrays — arming adaptation must not cost the zero-alloc guarantee.
#[test]
fn warm_adaptive_tick_and_slo_check_allocate_nothing() {
    use ham_aurora_repro::sim_core::BackendMetrics;

    let _gate = gate();
    let chan =
        ChannelCore::bounded(8, 8, 4096).with_batching(BatchConfig::adaptive_up_to(BATCH, 50));
    let m = BackendMetrics::new();
    let tick = |i: u64| {
        cycle(&chan);
        m.on_flush(SimTime::from_us(2 + i % 5));
        let _ = chan.adaptive_tick(BATCH, || m.flush_hist_buckets());
        // The sweep-side age check, both arms: the staged-empty lock
        // path here (the accumulator was just flushed), the lock-free
        // disabled path implicitly covered by the static test above.
        assert!(!chan.slo_flush_due(SimTime::ZERO));
    };
    for i in 0..32 {
        tick(i);
    }
    let ((), allocs) = counted(|| {
        for i in 0..64 {
            tick(i);
        }
    });
    assert_eq!(
        allocs, 0,
        "warm adaptive tick + SLO check must not touch the heap"
    );
}

/// The always-on observability layer must be free to keep on: recording
/// a completion (aggregate histogram + per-target register + EWMA),
/// a flush latency, a retry delay, and reading the EWMA back are all
/// atomic operations on preallocated registers — zero heap traffic.
/// The health event ring is bounded, so once it has wrapped, recording
/// events reuses its capacity and is heap-silent too.
#[test]
fn warm_metrics_and_health_recording_allocates_nothing() {
    use ham_aurora_repro::sim_core::{BackendMetrics, HealthEventKind};

    let _gate = gate();
    let m = BackendMetrics::new();
    let record = |i: u64| {
        m.on_post(64);
        m.on_complete_on((i % 4) as u16 + 1, SimTime::from_us(5 + i % 7));
        m.on_flush(SimTime::from_us(2));
        m.on_retry_delay(SimTime::from_us(40));
        assert!(m.latency_ewma((i % 4) as u16 + 1).is_some());
        m.health()
            .record((i % 4) as u16 + 1, HealthEventKind::Retry, i, i);
    };
    // Warm-up: seed every per-target register and wrap the event ring
    // past its bound so push/pop reuses its capacity.
    for i in 0..5000 {
        record(i);
    }
    let ((), allocs) = counted(|| {
        for i in 0..1024 {
            record(i);
        }
    });
    assert_eq!(
        allocs, 0,
        "warm metric/health recording must not touch the heap"
    );
}

// --- the same claim, end to end through the public API ------------------
//
// `Offload::async_` × N + `Offload::wait_all_into` must be heap-silent
// once warm. The backend below is a *synchronous* in-thread mock — the
// target "runs" inside `send_frame` — so the counting allocator sees
// exactly the host-side runtime: encode, stage, flush, sweep, settle,
// decode. A threaded backend would pollute the count with its own
// receiver loop.

mod warm_wait {
    use ham::wire::{MsgHeader, MsgKind, HEADER_BYTES};
    use ham::{f2f, ham_kernel, Registry, RegistryBuilder};
    use ham_aurora_repro::sim_core::{BackendMetrics, Clock};
    use ham_offload::backend::{CommBackend, RawBuffer};
    use ham_offload::chan::batch::{append_result_part, begin_result, BatchIter};
    use ham_offload::chan::{BatchConfig, ChannelCore, Reservation};
    use ham_offload::types::{DeviceType, NodeDescriptor, NodeId};
    use ham_offload::{Offload, OffloadError};
    use std::sync::Arc;

    ham_kernel! {
        /// Identity probe whose framed answer the mock precomputes.
        pub fn echo_probe(ctx, x: u64) -> u64 {
            let _ = ctx;
            x
        }
    }

    /// The value every offload carries; the mock's canned result.
    const VALUE: u64 = 7;
    /// Posts per `wait_all` round — below the batch watermark, so the
    /// frame leaves only when the wait flushes it.
    const DEPTH: usize = 8;

    struct MockBackend {
        registry: Arc<Registry>,
        chan: ChannelCore,
        clock: Clock,
        metrics: BackendMetrics,
        /// `frame_result(Ok(encode(VALUE)))`, framed once at setup.
        part: Vec<u8>,
    }

    impl MockBackend {
        fn new() -> Self {
            let mut b = RegistryBuilder::new();
            b.register::<echo_probe>();
            let mut part = vec![0u8];
            ham::codec::encode_into(&VALUE, &mut part).unwrap();
            MockBackend {
                registry: Arc::new(b.seal(0x4D4F_434B)),
                chan: ChannelCore::unbounded().with_batching(BatchConfig::up_to(2 * DEPTH)),
                clock: Clock::new(),
                metrics: BackendMetrics::new(),
                part,
            }
        }

        fn unsupported<T>() -> Result<T, OffloadError> {
            Err(OffloadError::Backend(
                "mock backend: memory verbs unsupported".into(),
            ))
        }
    }

    impl CommBackend for MockBackend {
        fn num_targets(&self) -> u16 {
            1
        }

        fn host_registry(&self) -> &Arc<Registry> {
            &self.registry
        }

        fn descriptor(&self, node: NodeId) -> Result<NodeDescriptor, OffloadError> {
            Ok(NodeDescriptor {
                node,
                name: "mock".into(),
                device_type: DeviceType::Generic,
                memory_bytes: 0,
                cores: 1,
            })
        }

        fn channel(&self, target: NodeId) -> Result<&ChannelCore, OffloadError> {
            if target == NodeId(1) {
                Ok(&self.chan)
            } else {
                Err(OffloadError::BadNode(target))
            }
        }

        /// The whole "target": answer every message in place, without
        /// leaving the calling thread or touching the heap — results go
        /// through the channel's own frame pool.
        fn send_frame(
            &self,
            _target: NodeId,
            _res: &Reservation,
            header: &MsgHeader,
            frame: &[u8],
        ) -> Result<(), OffloadError> {
            match header.kind {
                MsgKind::Batch => {
                    let subs =
                        BatchIter::new(&frame[HEADER_BYTES..]).map_err(OffloadError::Backend)?;
                    let count = subs.announced();
                    let mut body = self.chan.pool().checkout();
                    body.push(0);
                    begin_result(&mut body, count);
                    for sub in subs {
                        let (h, _payload) = sub.map_err(OffloadError::Backend)?;
                        append_result_part(&mut body, h.seq, &self.part);
                    }
                    self.chan.deposit_frame(header.seq, body);
                }
                MsgKind::Offload => {
                    let mut body = self.chan.pool().checkout();
                    body.extend_from_slice(&self.part);
                    self.chan.deposit_frame(header.seq, body);
                }
                MsgKind::Result | MsgKind::Control => {}
            }
            Ok(())
        }

        fn allocate(&self, _node: NodeId, _bytes: u64) -> Result<u64, OffloadError> {
            Self::unsupported()
        }

        fn free(&self, _node: NodeId, _addr: u64) -> Result<(), OffloadError> {
            Self::unsupported()
        }

        fn put_bytes(&self, _dst: RawBuffer, _data: &[u8]) -> Result<(), OffloadError> {
            Self::unsupported()
        }

        fn get_bytes(&self, _src: RawBuffer, _out: &mut [u8]) -> Result<(), OffloadError> {
            Self::unsupported()
        }

        fn host_clock(&self) -> &Clock {
            &self.clock
        }

        fn metrics(&self) -> &BackendMetrics {
            &self.metrics
        }

        fn shutdown(&self) {}
    }

    /// One warm round: `DEPTH` posts into reused vectors, then
    /// `wait_all_into` — which flushes the staged batch, sweeps, and
    /// settles every future.
    fn round(
        o: &Offload,
        futures: &mut Vec<ham_offload::Future<u64>>,
        out: &mut Vec<Result<u64, OffloadError>>,
    ) {
        out.clear();
        for _ in 0..DEPTH {
            futures.push(o.async_(NodeId(1), f2f!(echo_probe, VALUE)).unwrap());
        }
        o.wait_all_into(futures, out);
        assert_eq!(out.len(), DEPTH);
        for r in out.iter() {
            assert_eq!(*r.as_ref().unwrap(), VALUE);
        }
    }

    #[test]
    fn warm_wait_all_loop_allocates_nothing() {
        let _gate = super::gate();
        let o = Offload::new(Arc::new(MockBackend::new()));
        let mut futures = Vec::new();
        let mut out = Vec::new();
        // Warm-up: frame pool, seq freelist, pending/completed tables,
        // the sweep scratch thread-local, metric EWMA entries.
        for _ in 0..16 {
            round(&o, &mut futures, &mut out);
        }
        let ((), allocs) = super::counted(|| {
            for _ in 0..64 {
                round(&o, &mut futures, &mut out);
            }
        });
        assert_eq!(
            allocs, 0,
            "warm async_ ×{DEPTH} + wait_all must not touch the heap"
        );
        assert_eq!(o.in_flight(NodeId(1)).unwrap(), 0);
    }

    /// Pool admission is heap-silent once warm: `len`/`is_empty` count
    /// the healthy set under the lock (they used to clone the healthy
    /// `Vec` — one allocation per liveness check, on the hot submit
    /// path of every pooled caller), and a `try_pick` placement
    /// decision (prune + policy select + credit check) is pointer
    /// chasing and integer math over preallocated state.
    #[test]
    fn warm_pool_admission_allocates_nothing() {
        use ham_offload::sched::SchedPolicy;

        let _gate = super::gate();
        let o = Offload::new(Arc::new(MockBackend::new()));
        let pool = o
            .pool_with(&[NodeId(1)], SchedPolicy::RoundRobin)
            .unwrap();
        // Warm-up: pooled rounds fill the frame pool, the channel
        // tables, and the pool's own admission state (healthy set,
        // miss-streak map, cursor).
        for _ in 0..4 {
            let futs: Vec<_> = (0..DEPTH)
                .map(|_| pool.submit(f2f!(echo_probe, VALUE)).unwrap())
                .collect();
            for r in pool.wait_all(futs) {
                assert_eq!(r.unwrap(), VALUE);
            }
        }
        let ((), allocs) = super::counted(|| {
            for _ in 0..256 {
                assert_eq!(pool.len(), 1);
                assert!(!pool.is_empty());
                assert_eq!(pool.try_pick().unwrap(), Some(NodeId(1)));
            }
        });
        assert_eq!(allocs, 0, "warm pool admission must not touch the heap");
        assert_eq!(o.in_flight(NodeId(1)).unwrap(), 0);
    }
}
