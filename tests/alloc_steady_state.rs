//! Counting-allocator proof of the zero-copy frame path: once the frame
//! pool and the channel core's tables are warm, a full post → flush →
//! send → result → complete cycle performs **zero** heap allocations.

use ham::registry::HandlerKey;
use ham_aurora_repro::sim_core::SimTime;
use ham_offload::chan::{BatchConfig, ChannelCore, FlushPrep, Stage};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Wraps the system allocator and counts every allocation. Frees are
/// not counted: the steady-state claim is about *new* heap traffic.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

const BATCH: usize = 8;
const KEY: HandlerKey = HandlerKey(3);
const PAYLOAD: [u8; 24] = [5u8; 24];
/// One member's framed result: `frame_result(Ok([9, 9]))`.
const PART: [u8; 3] = [0, 9, 9];

/// One steady-state cycle: stage a full batch, flush it, pretend the
/// transport sent it, deposit the combined result, drain every member
/// completion. All buffers come from (and return to) the frame pool.
fn cycle(chan: &ChannelCore) {
    let mut seqs = [0u64; BATCH];
    for (i, slot) in seqs.iter_mut().enumerate() {
        match chan.stage(KEY, &PAYLOAD, i as u64, SimTime::ZERO) {
            Stage::Staged { seq, .. } => *slot = seq,
            other => panic!("stage refused: {other:?}"),
        }
    }
    let f = match chan.take_flush() {
        FlushPrep::Ready(f) => f,
        other => panic!("flush refused: {other:?}"),
    };
    let carrier = f.res.seq;
    assert_eq!(carrier, seqs[BATCH - 1], "carrier is the last member");
    chan.note_sent(carrier, &f.header, f.frame);

    // The target's combined answer, framed by hand into a pooled buffer:
    // frame_result(Ok(count ‖ count × [seq ‖ len ‖ part])).
    let mut body = chan.pool().checkout();
    body.push(0);
    body.extend_from_slice(&(BATCH as u32).to_le_bytes());
    for &s in &seqs {
        body.extend_from_slice(&s.to_le_bytes());
        body.extend_from_slice(&(PART.len() as u32).to_le_bytes());
        body.extend_from_slice(&PART);
    }
    chan.deposit_frame(carrier, body);

    for &s in &seqs {
        let done = chan
            .take_completed(s)
            .expect("member completion parked")
            .expect("member result ok");
        assert_eq!(done.as_slice(), &PART);
    }
    assert_eq!(chan.in_flight(), 0);
}

#[test]
fn steady_state_batched_cycle_allocates_nothing() {
    let chan = ChannelCore::bounded(8, 8, 4096).with_batching(BatchConfig::up_to(BATCH));
    // Warm-up: fills the frame pool, the seq freelist, and the hash
    // tables' capacity.
    for _ in 0..32 {
        cycle(&chan);
    }
    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..64 {
        cycle(&chan);
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state post→complete must not touch the heap"
    );
}
