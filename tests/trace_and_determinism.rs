//! Observability and determinism guarantees of the simulation.

use aurora_workloads::kernels::whoami;
use ham::f2f;
use ham_aurora_repro::{dma_offload, NodeId};
use ham_backend_dma::DmaBackend;
use ham_backend_veo::ProtocolConfig;
use ham_offload::Offload;
use std::sync::Arc;
use veos_sim::{AuroraMachine, MachineConfig};

fn machine() -> Arc<AuroraMachine> {
    AuroraMachine::small(
        1,
        MachineConfig {
            hbm_bytes: 16 << 20,
            vh_bytes: 32 << 20,
            ..Default::default()
        },
    )
}

// These used to be one monolithic test: tracing was a process-global
// toggle, so a concurrently running offload would pollute the capture.
// Now the `TraceSession` guard serializes sessions and every span carries
// its offload's correlation id, so the traced test filters to its own
// offload and the three tests run independently.

#[test]
fn traced_components_cover_the_critical_path() {
    let o = Offload::new(DmaBackend::spawn(
        machine(),
        0,
        &[0],
        ProtocolConfig::default(),
        aurora_workloads::register_all,
    ));
    for _ in 0..10 {
        o.sync(NodeId(1), f2f!(whoami)).unwrap();
    }
    let session = aurora_sim_core::trace::TraceSession::start();
    let t0 = o.backend().host_clock().now();
    let fut = o.async_(NodeId(1), f2f!(whoami)).unwrap();
    let id = fut.offload_id();
    fut.get().unwrap();
    let t1 = o.backend().host_clock().now();
    let events = aurora_sim_core::trace::sim_events(&session.finish());

    // Our offload's spans only (concurrent tests' offloads carry other
    // ids); the PCIe wire-occupancy sub-spans overlap the DMA spans that
    // subsume them, so they are excluded from the gap-free chain check.
    let chain: Vec<_> = events
        .iter()
        .filter(|e| e.offload == id.0 && !e.category.starts_with("pcie."))
        .collect();

    // The steady-state offload decomposes into exactly these components.
    let cats: Vec<&str> = chain.iter().map(|e| e.category).collect();
    assert_eq!(
        cats,
        vec![
            "ham.host_overhead",
            "vh.local_post",
            "lhm.word",
            "udma.read",
            "shm.word",
            "ham.target_overhead",
            "udma.write",
            "shm.flag",
            "vh.local_consume",
        ],
        "critical path composition"
    );
    // Gap-free: each event starts where the previous one ended, and the
    // whole chain spans the measured end-to-end cost.
    for w in chain.windows(2) {
        assert_eq!(w[0].end, w[1].start, "{:?} -> {:?}", w[0], w[1]);
    }
    assert_eq!(chain.first().unwrap().start, t0);
    assert_eq!(chain.last().unwrap().end, t1);
    o.shutdown();
}

#[test]
fn virtual_time_is_deterministic_across_runs() {
    // Two independent runs of the same scenario produce identical
    // virtual-time results — regardless of OS scheduling.
    let run = || {
        let o = dma_offload(2, aurora_workloads::register_all);
        for n in 1..=2u16 {
            for _ in 0..10 {
                o.sync(NodeId(n), f2f!(whoami)).unwrap();
            }
        }
        let t = o.backend().host_clock().now();
        o.shutdown();
        t
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "virtual end times must match exactly");
}

#[test]
fn offload_costs_are_stable_per_iteration() {
    // In steady state every empty offload costs exactly the same
    // virtual time (the simulation has no noise to average away).
    let o = dma_offload(1, aurora_workloads::register_all);
    for _ in 0..10 {
        o.sync(NodeId(1), f2f!(whoami)).unwrap();
    }
    let mut costs = Vec::new();
    for _ in 0..5 {
        let t0 = o.backend().host_clock().now();
        o.sync(NodeId(1), f2f!(whoami)).unwrap();
        costs.push(o.backend().host_clock().now() - t0);
    }
    assert!(
        costs.windows(2).all(|w| w[0] == w[1]),
        "steady-state costs vary: {costs:?}"
    );
    o.shutdown();
}
