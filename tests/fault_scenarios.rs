//! Acceptance matrix for the fault-injection subsystem.
//!
//! Every test here is a [`Scenario`]: a seeded fault plan, a traffic
//! shape, and (optionally) a mid-stream kill — run twice to pin the
//! semantic failure timeline (same seed ⇒ same drops/kills/disconnects)
//! and checked for leaks (`in_flight` must return to zero on every
//! target, dead or alive).
//!
//! The headline matrix kills one of two targets while a wave of
//! offloads is in flight, on **every** fault-capable backend (VEO, DMA,
//! TCP) under **eight** seeds: in-flight offloads on the dead target
//! fail with `TargetLost`, every survivor offload completes correctly,
//! and no `PendingTable` entry leaks.

use ham_aurora_repro::fault_scenario::{BackendKind, Scenario};
use ham_aurora_repro::sim_core::SimTime;
use ham_aurora_repro::RecoveryPolicy;

const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 42, 0xA770_57E5];

/// Kill target 1 of 2 while wave 1 of 3 is in flight; target 2 must be
/// completely unaffected and nothing may hang or leak.
fn kill_one_of_two(backend: BackendKind) {
    for seed in SEEDS {
        let r = Scenario::new(backend, 2, seed)
            .waves(3, 4)
            .kill_after_wave(1, 1)
            .assert_deterministic();
        let label = format!("{} seed {seed}", backend.name());

        // Every offload is accounted for, with no stray failure mode.
        assert_eq!(r.total(), 24, "{label}: {:?}", r.outcomes);
        assert_eq!(
            r.ok + r.lost + r.refused,
            24,
            "{label}: unexpected timeouts/failures: {:?}",
            r.outcomes
        );

        // The survivor completes all 12 offloads with correct results.
        let survivor_ok = r
            .outcomes
            .iter()
            .filter(|l| l.contains("t2") && l.ends_with("ok"))
            .count();
        assert_eq!(survivor_ok, 12, "{label}: survivor hit: {:?}", r.outcomes);

        // Wave 0 was collected before the kill: the doomed target still
        // served it.
        assert!(
            r.outcomes
                .iter()
                .filter(|l| l.starts_with("w0 t1"))
                .all(|l| l.ends_with("ok")),
            "{label}: pre-kill wave must complete: {:?}",
            r.outcomes
        );

        // The kill actually cost something on the doomed target.
        assert!(r.lost + r.refused > 0, "{label}: kill had no effect");

        // Recovery bookkeeping: one eviction, no leaked pending
        // entries, and exactly one semantic fault in the timeline (the
        // kill/disconnect itself).
        assert_eq!(r.leaked, 0, "{label}: leaked pending entries");
        assert!(r.evictions >= 1, "{label}: no eviction recorded");
        assert_eq!(r.timeline.len(), 1, "{label}: timeline {:?}", r.timeline);
    }
}

#[test]
fn kill_one_of_two_targets_veo() {
    kill_one_of_two(BackendKind::Veo);
}

#[test]
fn kill_one_of_two_targets_dma() {
    kill_one_of_two(BackendKind::Dma);
}

#[test]
fn kill_one_of_two_targets_tcp() {
    kill_one_of_two(BackendKind::Tcp);
}

/// Moderate frame loss with a retry budget: every offload still
/// completes (the serial outcome list replays exactly), and at least
/// one re-send was needed.
fn drops_recovered_by_retries(backend: BackendKind) {
    for seed in [7u64, 1234] {
        let s = Scenario::new(backend, 1, seed)
            .tlp_drop(0.25)
            .recovery(RecoveryPolicy {
                retry_after_misses: 64,
                max_retries: 4,
            })
            .waves(3, 4);
        let a = s.run();
        let b = s.run();
        let label = format!("{} seed {seed}", backend.name());

        // Single-target serial waves: per-offload outcomes replay.
        assert_eq!(a.outcomes, b.outcomes, "{label}");
        // First-attempt drops are pure functions of (seq, attempt) and
        // must replay too (later attempts can race a slow completion,
        // so only the attempt-0 subset is compared).
        let first_attempts = |r: &ham_aurora_repro::fault_scenario::ScenarioReport| {
            r.timeline
                .iter()
                .filter(|l| l.contains("attempt: 0"))
                .cloned()
                .collect::<Vec<_>>()
        };
        assert_eq!(first_attempts(&a), first_attempts(&b), "{label}");

        assert_eq!(a.ok, 12, "{label}: lost offloads: {:?}", a.outcomes);
        assert_eq!(a.leaked, 0, "{label}");
        assert!(
            !a.timeline.is_empty(),
            "{label}: seed injected no drops — pick another seed"
        );
        assert!(a.resends >= 1, "{label}: drops never retried");
    }
}

#[test]
fn drops_recovered_by_retries_veo() {
    drops_recovered_by_retries(BackendKind::Veo);
}

#[test]
fn drops_recovered_by_retries_dma() {
    drops_recovered_by_retries(BackendKind::Dma);
}

/// Total frame loss: every attempt of every offload is dropped, so the
/// first offload to exhaust its retry budget fails with `Timeout` and
/// the target is evicted (a definitively lost frame is a hole the
/// target's in-order slot cursor can never pass); the rest fail with
/// `TargetLost` — deterministically, with the full drop timeline
/// replayed.
fn total_loss_times_out(backend: BackendKind) {
    let r = Scenario::new(backend, 1, 99)
        .tlp_drop(1.0)
        .recovery(RecoveryPolicy {
            retry_after_misses: 32,
            max_retries: 2,
        })
        .waves(1, 3)
        .assert_deterministic();
    let label = backend.name();

    assert_eq!(r.timed_out, 1, "{label}: {:?}", r.outcomes);
    assert_eq!(r.lost, 2, "{label}: {:?}", r.outcomes);
    assert_eq!(r.ok, 0, "{label}");
    assert_eq!(r.retry_timeouts, 1, "{label}");
    assert_eq!(r.evictions, 1, "{label}");
    assert_eq!(r.resends, 6, "{label}: 2 re-sends per offload");
    assert_eq!(r.leaked, 0, "{label}");
    // 3 offloads × attempts {0, 1, 2} all dropped.
    assert_eq!(r.timeline.len(), 9, "{label}: {:?}", r.timeline);
}

#[test]
fn total_loss_times_out_veo() {
    total_loss_times_out(BackendKind::Veo);
}

#[test]
fn total_loss_times_out_dma() {
    total_loss_times_out(BackendKind::Dma);
}

/// Timing-only faults (TLP replay, delay spikes, DMA stalls, partial
/// transfers) stretch virtual time but change no outcome: everything
/// completes and the *semantic* timeline stays empty.
fn timing_faults_change_no_outcome(backend: BackendKind) {
    let r = Scenario::new(backend, 1, 5)
        .tlp_dup(0.5)
        .delay_spike(0.5, SimTime::from_us(50))
        .dma_stall(0.5, SimTime::from_us(20))
        .dma_partial(0.5)
        .waves(2, 3)
        .run();
    let label = backend.name();
    assert_eq!(r.ok, 6, "{label}: {:?}", r.outcomes);
    assert_eq!(r.leaked, 0, "{label}");
    assert!(
        r.timeline.is_empty(),
        "{label}: timing faults are not semantic: {:?}",
        r.timeline
    );
    assert_eq!(r.resends + r.retry_timeouts + r.evictions, 0, "{label}");
}

#[test]
fn timing_faults_change_no_outcome_veo() {
    timing_faults_change_no_outcome(BackendKind::Veo);
}

#[test]
fn timing_faults_change_no_outcome_dma() {
    timing_faults_change_no_outcome(BackendKind::Dma);
}

/// A zero plan injects nothing on any backend: all offloads succeed,
/// no recovery machinery fires, the timeline is empty.
#[test]
fn zero_plan_is_inert_everywhere() {
    for backend in BackendKind::ALL {
        let r = Scenario::new(backend, 2, 0).waves(2, 3).run();
        let label = backend.name();
        assert_eq!(r.ok, 12, "{label}: {:?}", r.outcomes);
        assert_eq!(r.leaked, 0, "{label}");
        assert!(r.timeline.is_empty(), "{label}");
        assert_eq!(r.resends + r.retry_timeouts + r.evictions, 0, "{label}");
    }
}
