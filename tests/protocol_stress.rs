//! Stress and integrity tests of both messaging protocols: slot reuse
//! under pipelining, payload integrity across sizes, interleaved
//! multi-target traffic, and property-based wire integrity.

use aurora_workloads::kernels::{busy_work, echo, vec_sum};
use ham::f2f;
use ham_aurora_repro::{dma_offload, veo_offload, NodeId, Offload};
use proptest::prelude::*;

fn both() -> Vec<(&'static str, Offload)> {
    vec![
        ("veo", veo_offload(1, aurora_workloads::register_all)),
        ("dma", dma_offload(1, aurora_workloads::register_all)),
    ]
}

#[test]
fn hundred_pipelined_offloads_per_protocol() {
    for (name, o) in both() {
        let futures: Vec<_> = (0..100)
            .map(|i| o.async_(NodeId(1), f2f!(busy_work, i % 7)).unwrap())
            .collect();
        for (i, f) in futures.into_iter().enumerate() {
            let r = f
                .get()
                .unwrap_or_else(|e| panic!("{name}: offload {i}: {e}"));
            assert!(r == i as u64 % 7 || r == (i as u64 % 7) + 1);
        }
        o.shutdown();
    }
}

#[test]
fn payload_sizes_across_the_small_fetch_boundary() {
    // The DMA protocol fetches header+224 B in the first DMA; exercise
    // payloads straddling that boundary and the slot capacity.
    for (name, o) in both() {
        for size in [0usize, 1, 100, 223, 224, 225, 256, 1000, 4000] {
            let blob: Vec<u8> = (0..size).map(|i| (i * 31 % 251) as u8).collect();
            let r = o
                .sync(NodeId(1), f2f!(echo, blob.clone()))
                .unwrap_or_else(|e| panic!("{name}: size {size}: {e}"));
            assert_eq!(r, blob, "{name}: size {size}");
        }
        o.shutdown();
    }
}

#[test]
fn interleaved_traffic_to_multiple_targets() {
    let o = dma_offload(3, aurora_workloads::register_all);
    // Per-target resident buffer with distinct contents.
    let bufs: Vec<_> = (1..=3u16)
        .map(|n| {
            let t = NodeId(n);
            let b = o.allocate::<f64>(t, 16).unwrap();
            let vals: Vec<f64> = (0..16).map(|i| (n as f64) * 100.0 + i as f64).collect();
            o.put(&vals, b).unwrap();
            (t, b, vals.iter().sum::<f64>())
        })
        .collect();
    // Interleave offloads round-robin across the targets.
    let mut futures = Vec::new();
    for round in 0..10 {
        for (t, b, expect) in &bufs {
            let f = o.async_(*t, f2f!(vec_sum, b.addr(), 16)).unwrap();
            futures.push((round, *t, f, *expect));
        }
    }
    for (round, t, f, expect) in futures {
        let r = f.get().unwrap();
        assert_eq!(r, expect, "round {round}, {t}");
    }
    o.shutdown();
}

#[test]
fn results_can_be_consumed_out_of_order() {
    let o = dma_offload(1, aurora_workloads::register_all);
    let futures: Vec<_> = (0..12)
        .map(|i| {
            (
                i,
                o.async_(NodeId(1), f2f!(echo, vec![i as u8; 64])).unwrap(),
            )
        })
        .collect();
    // Consume newest-first: slot bookkeeping must not confuse results.
    for (i, f) in futures.into_iter().rev() {
        assert_eq!(f.get().unwrap(), vec![i as u8; 64]);
    }
    o.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any protocol geometry (slot counts, slot sizes) moves messages
    /// correctly on both Aurora backends.
    #[test]
    fn prop_random_protocol_geometry(
        recv in 1usize..6,
        send in 1usize..6,
        msg_pow in 8u32..13,
        veo_backend: bool,
    ) {
        use ham_backend_veo::{ProtocolConfig, VeoBackend};
        use ham_backend_dma::DmaBackend;
        use veos_sim::{AuroraMachine, MachineConfig};
        let cfg = ProtocolConfig {
            recv_slots: recv,
            send_slots: send,
            msg_bytes: 1 << msg_pow,
            reverse: false,
        };
        let machine = AuroraMachine::small(
            1,
            MachineConfig {
                hbm_bytes: 16 << 20,
                vh_bytes: 32 << 20,
                ..Default::default()
            },
        );
        let o = if veo_backend {
            Offload::new(VeoBackend::spawn(machine, 0, &[0], cfg, aurora_workloads::register_all))
        } else {
            Offload::new(DmaBackend::spawn(machine, 0, &[0], cfg, aurora_workloads::register_all))
        };
        // Payload sizes that probe the slot boundary: the serialised
        // request is `8-byte Vec length ‖ bytes` and the result adds one
        // frame byte on top, so cap at slot − 16.
        let near_cap = (1usize << msg_pow) - 16;
        let futures: Vec<_> = (0..2 * (recv + send))
            .map(|i| {
                let size = if i % 3 == 0 { near_cap } else { i * 17 % near_cap };
                let blob = vec![(i % 251) as u8; size];
                (blob.clone(), o.async_(NodeId(1), f2f!(echo, blob)).unwrap())
            })
            .collect();
        for (blob, f) in futures {
            prop_assert_eq!(f.get().unwrap(), blob);
        }
        o.shutdown();
    }

    /// Arbitrary payload bytes survive the full DMA protocol unchanged.
    #[test]
    fn prop_dma_wire_integrity(blob in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let o = dma_offload(1, aurora_workloads::register_all);
        let r = o.sync(NodeId(1), f2f!(echo, blob.clone())).unwrap();
        prop_assert_eq!(r, blob);
        o.shutdown();
    }

    /// Arbitrary f64 buffers survive put/kernel/get on the VEO backend.
    #[test]
    fn prop_veo_buffer_integrity(xs in proptest::collection::vec(any::<f64>(), 1..256)) {
        let o = veo_offload(1, aurora_workloads::register_all);
        let t = NodeId(1);
        let b = o.allocate::<f64>(t, xs.len() as u64).unwrap();
        o.put(&xs, b).unwrap();
        let mut out = vec![0.0f64; xs.len()];
        o.get(b, &mut out).unwrap();
        for (a, c) in xs.iter().zip(&out) {
            prop_assert_eq!(a.to_bits(), c.to_bits());
        }
        o.shutdown();
    }
}
