//! Stress and integrity tests of both messaging protocols: slot reuse
//! under pipelining, payload integrity across sizes, interleaved
//! multi-target traffic, and property-based wire integrity.

use aurora_sim_core::SimTime;
use aurora_workloads::kernels::{busy_work, echo, vec_sum};
use ham::f2f;
use ham::registry::HandlerKey;
use ham::wire::{MsgHeader, MsgKind};
use ham_aurora_repro::{dma_offload, veo_offload, NodeId, Offload};
use ham_offload::chan::pool::FramePool;
use ham_offload::chan::{ChannelCore, MissVerdict, PooledFrame, RecoveryPolicy, Reserve};
use ham_offload::target_loop::{
    run_target_loop_env, unframe_result, Polled, TargetChannel, TargetEnv,
};
use ham_offload::OffloadError;
use proptest::prelude::*;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// In-memory [`TargetChannel`]: scripted inbox, recorded outbox. The
/// dedup property feeds it a frame stream with recovery-style duplicate
/// deliveries and checks what the target loop actually executes.
struct ScriptedChannel {
    inbox: Mutex<VecDeque<(MsgHeader, Vec<u8>)>>,
    outbox: Mutex<Vec<(u16, u64, Vec<u8>)>>,
}

impl TargetChannel for ScriptedChannel {
    fn recv(&self, pool: &Arc<FramePool>) -> Option<(MsgHeader, PooledFrame)> {
        let (h, p) = self.inbox.lock().unwrap().pop_front()?;
        Some((h, pool.adopt(p)))
    }
    fn try_recv(&self, pool: &Arc<FramePool>) -> Polled {
        match self.inbox.lock().unwrap().pop_front() {
            Some((h, p)) => Polled::Msg(h, pool.adopt(p)),
            None => Polled::Empty,
        }
    }
    fn send_result(&self, reply_slot: u16, seq: u64, payload: Vec<u8>) {
        self.outbox.lock().unwrap().push((reply_slot, seq, payload));
    }
}

fn both() -> Vec<(&'static str, Offload)> {
    vec![
        ("veo", veo_offload(1, aurora_workloads::register_all)),
        ("dma", dma_offload(1, aurora_workloads::register_all)),
    ]
}

#[test]
fn hundred_pipelined_offloads_per_protocol() {
    for (name, o) in both() {
        let futures: Vec<_> = (0..100)
            .map(|i| o.async_(NodeId(1), f2f!(busy_work, i % 7)).unwrap())
            .collect();
        for (i, f) in futures.into_iter().enumerate() {
            let r = f
                .get()
                .unwrap_or_else(|e| panic!("{name}: offload {i}: {e}"));
            assert!(r == i as u64 % 7 || r == (i as u64 % 7) + 1);
        }
        o.shutdown();
    }
}

#[test]
fn payload_sizes_across_the_small_fetch_boundary() {
    // The DMA protocol fetches header+224 B in the first DMA; exercise
    // payloads straddling that boundary and the slot capacity.
    for (name, o) in both() {
        for size in [0usize, 1, 100, 223, 224, 225, 256, 1000, 4000] {
            let blob: Vec<u8> = (0..size).map(|i| (i * 31 % 251) as u8).collect();
            let r = o
                .sync(NodeId(1), f2f!(echo, blob.clone()))
                .unwrap_or_else(|e| panic!("{name}: size {size}: {e}"));
            assert_eq!(r, blob, "{name}: size {size}");
        }
        o.shutdown();
    }
}

#[test]
fn interleaved_traffic_to_multiple_targets() {
    let o = dma_offload(3, aurora_workloads::register_all);
    // Per-target resident buffer with distinct contents.
    let bufs: Vec<_> = (1..=3u16)
        .map(|n| {
            let t = NodeId(n);
            let b = o.allocate::<f64>(t, 16).unwrap();
            let vals: Vec<f64> = (0..16).map(|i| (n as f64) * 100.0 + i as f64).collect();
            o.put(&vals, b).unwrap();
            (t, b, vals.iter().sum::<f64>())
        })
        .collect();
    // Interleave offloads round-robin across the targets.
    let mut futures = Vec::new();
    for round in 0..10 {
        for (t, b, expect) in &bufs {
            let f = o.async_(*t, f2f!(vec_sum, b.addr(), 16)).unwrap();
            futures.push((round, *t, f, *expect));
        }
    }
    for (round, t, f, expect) in futures {
        let r = f.get().unwrap();
        assert_eq!(r, expect, "round {round}, {t}");
    }
    o.shutdown();
}

#[test]
fn results_can_be_consumed_out_of_order() {
    let o = dma_offload(1, aurora_workloads::register_all);
    let futures: Vec<_> = (0..12)
        .map(|i| {
            (
                i,
                o.async_(NodeId(1), f2f!(echo, vec![i as u8; 64])).unwrap(),
            )
        })
        .collect();
    // Consume newest-first: slot bookkeeping must not confuse results.
    for (i, f) in futures.into_iter().rev() {
        assert_eq!(f.get().unwrap(), vec![i as u8; 64]);
    }
    o.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any protocol geometry (slot counts, slot sizes) moves messages
    /// correctly on both Aurora backends.
    #[test]
    fn prop_random_protocol_geometry(
        recv in 1usize..6,
        send in 1usize..6,
        msg_pow in 8u32..13,
        veo_backend: bool,
    ) {
        use ham_backend_veo::{ProtocolConfig, VeoBackend};
        use ham_backend_dma::DmaBackend;
        use veos_sim::{AuroraMachine, MachineConfig};
        let cfg = ProtocolConfig {
            recv_slots: recv,
            send_slots: send,
            msg_bytes: 1 << msg_pow,
            ..Default::default()
        };
        let machine = AuroraMachine::small(
            1,
            MachineConfig {
                hbm_bytes: 16 << 20,
                vh_bytes: 32 << 20,
                ..Default::default()
            },
        );
        let o = if veo_backend {
            Offload::new(VeoBackend::spawn(machine, 0, &[0], cfg, aurora_workloads::register_all))
        } else {
            Offload::new(DmaBackend::spawn(machine, 0, &[0], cfg, aurora_workloads::register_all))
        };
        // Payload sizes that probe the slot boundary: the serialised
        // request is `8-byte Vec length ‖ bytes` and the result adds one
        // frame byte on top, so cap at slot − 16.
        let near_cap = (1usize << msg_pow) - 16;
        let futures: Vec<_> = (0..2 * (recv + send))
            .map(|i| {
                let size = if i % 3 == 0 { near_cap } else { i * 17 % near_cap };
                let blob = vec![(i % 251) as u8; size];
                (blob.clone(), o.async_(NodeId(1), f2f!(echo, blob)).unwrap())
            })
            .collect();
        for (blob, f) in futures {
            prop_assert_eq!(f.get().unwrap(), blob);
        }
        o.shutdown();
    }

    /// Arbitrary payload bytes survive the full DMA protocol unchanged.
    #[test]
    fn prop_dma_wire_integrity(blob in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let o = dma_offload(1, aurora_workloads::register_all);
        let r = o.sync(NodeId(1), f2f!(echo, blob.clone())).unwrap();
        prop_assert_eq!(r, blob);
        o.shutdown();
    }

    /// Deadline arithmetic on the channel core itself: with a policy of
    /// `k` misses and `r` retries armed, every in-flight offload is
    /// re-sent exactly at cumulative miss `k·(2^a − 1)` for attempts
    /// `a = 1..=r` and timed out exactly at miss `k·(2^(r+1) − 1)` —
    /// regardless of how posts are staggered — and the PendingTable
    /// evicts timed-out entries in post order, leaking nothing.
    #[test]
    fn prop_pending_deadline_ordering(
        k in 1u32..8,
        r in 0u32..3,
        gaps in proptest::collection::vec(0u64..4, 2..6),
    ) {
        let core = ChannelCore::bounded(8, 8, 256).with_recovery(RecoveryPolicy {
            retry_after_misses: k,
            max_retries: r,
        });
        let mut live: Vec<u64> = Vec::new();
        let mut posted_at_sweep: Vec<(u64, u64)> = Vec::new();
        let mut retries: Vec<(u64, u32, u64)> = Vec::new(); // (seq, attempt, sweep)
        let mut timeouts: Vec<(u64, u64)> = Vec::new(); // (seq, sweep)
        let mut sweep = 0u64;

        // One engine-style flag sweep: a miss for every in-flight seq.
        macro_rules! sweep_once {
            () => {
                sweep += 1;
                for seq in live.clone() {
                    match core.note_miss(seq) {
                        MissVerdict::Keep => {}
                        MissVerdict::Retry { header, frame, attempt } => {
                            prop_assert_eq!(header.seq, seq);
                            prop_assert_eq!(&frame[ham::wire::HEADER_BYTES..], b"hi".as_slice());
                            retries.push((seq, attempt, sweep));
                        }
                        MissVerdict::TimedOut => {
                            timeouts.push((seq, sweep));
                            let entry = core.take_pending(seq).expect("timed-out entry still pending");
                            core.finish(seq, &entry, Err(OffloadError::Timeout));
                            live.retain(|&s| s != seq);
                        }
                    }
                }
            };
        }

        // Post one offload per gap entry, `gap` empty sweeps apart.
        for gap in &gaps {
            let res = match core.try_reserve(false, 0, SimTime::ZERO, 0) {
                Reserve::Reserved(res) => res,
                other => panic!("reserve refused: {other:?}"),
            };
            let header = MsgHeader {
                handler_key: HandlerKey(1),
                payload_len: 2,
                kind: MsgKind::Offload,
                reply_slot: res.send_slot as u16,
                corr: 0,
                seq: res.seq,
            };
            let mut wire = header.encode().to_vec();
            wire.extend_from_slice(b"hi");
            core.note_sent(res.seq, &header, PooledFrame::detached(wire));
            posted_at_sweep.push((res.seq, sweep));
            live.push(res.seq);
            for _ in 0..*gap {
                sweep_once!();
            }
        }
        // Sweep until every offload has timed out (bounded: the worst
        // deadline is 7·(2³−1) = 49 sweeps past the last post).
        while !live.is_empty() {
            prop_assert!(sweep < 1000, "deadlines never fired");
            sweep_once!();
        }

        let distance = u64::from(k) * ((1u64 << (r + 1)) - 1);
        prop_assert_eq!(timeouts.len(), gaps.len());
        for (i, ((seq, at), (posted_seq, posted))) in
            timeouts.iter().zip(&posted_at_sweep).enumerate()
        {
            // Timed out in post order, each exactly `distance` sweeps
            // after its own post.
            prop_assert_eq!((i, *seq), (i, *posted_seq));
            prop_assert_eq!(at - posted, distance, "seq {} deadline", seq);
        }
        for (seq, attempt, at) in &retries {
            let posted = posted_at_sweep.iter().find(|(s, _)| s == seq).unwrap().1;
            prop_assert_eq!(at - posted, u64::from(k) * ((1u64 << attempt) - 1));
        }
        prop_assert_eq!(
            retries.len(),
            gaps.len() * r as usize,
            "every offload re-sends exactly r times"
        );
        // Timeout evicted every entry: nothing leaked in the table.
        prop_assert_eq!(core.in_flight(), 0);
    }

    /// A recovery re-send colliding with its late original: however
    /// duplicate frames are interleaved into an in-order stream, the
    /// dedup watermark serves each distinct seq exactly once, in
    /// first-arrival order, and duplicates never re-execute the kernel.
    #[test]
    fn prop_dedup_serves_each_seq_once(
        n in 1usize..10,
        dups in proptest::collection::vec((1usize..64, 0usize..64), 0..8),
    ) {
        // An in-order distinct stream 0..n with duplicates spliced in,
        // each strictly after (a copy of) its original — exactly what
        // slot rotation plus recovery re-sends can produce on the wire.
        let mut stream: Vec<u64> = (0..n as u64).collect();
        for (pos, back) in dups {
            let at = 1 + pos % stream.len();
            let dup = stream[back % at];
            stream.insert(at, dup);
        }

        let mut b = ham::RegistryBuilder::new();
        aurora_workloads::register_all(&mut b);
        let registry = b.seal(7);
        let key = registry.key_of::<echo>().unwrap();
        let mut inbox: VecDeque<(MsgHeader, Vec<u8>)> = stream
            .iter()
            .map(|&seq| {
                let payload = ham::codec::encode(&f2f!(echo, vec![seq as u8; 3])).unwrap();
                let header = MsgHeader {
                    handler_key: key,
                    payload_len: payload.len() as u32,
                    kind: MsgKind::Offload,
                    reply_slot: seq as u16,
                    corr: 0,
                    seq,
                };
                (header, payload)
            })
            .collect();
        inbox.push_back((
            MsgHeader {
                handler_key: HandlerKey(0),
                payload_len: 0,
                kind: MsgKind::Control,
                reply_slot: 0,
                corr: 0,
                seq: u64::MAX,
            },
            vec![],
        ));
        let chan = ScriptedChannel {
            inbox: Mutex::new(inbox),
            outbox: Mutex::new(vec![]),
        };
        let mem = ham::message::VecMemory::new(0);
        let env = TargetEnv {
            node: 1,
            registry: &registry,
            mem: &mem,
            reverse: None,
            meter: None,
            dedup: true,
        };
        let served = run_target_loop_env(&env, &chan);

        // Exactly one execution per distinct seq, results published in
        // first-arrival (= seq) order with the right reply slots.
        prop_assert_eq!(served, n as u64);
        let out = chan.outbox.lock().unwrap();
        prop_assert_eq!(out.len(), n);
        for (i, (slot, seq, frame)) in out.iter().enumerate() {
            prop_assert_eq!((*slot, *seq), (i as u16, i as u64));
            let bytes = unframe_result(frame).unwrap();
            prop_assert_eq!(
                ham::codec::decode::<Vec<u8>>(&bytes).unwrap(),
                vec![i as u8; 3]
            );
        }
    }

    /// Arbitrary f64 buffers survive put/kernel/get on the VEO backend.
    #[test]
    fn prop_veo_buffer_integrity(xs in proptest::collection::vec(any::<f64>(), 1..256)) {
        let o = veo_offload(1, aurora_workloads::register_all);
        let t = NodeId(1);
        let b = o.allocate::<f64>(t, xs.len() as u64).unwrap();
        o.put(&xs, b).unwrap();
        let mut out = vec![0.0f64; xs.len()];
        o.get(b, &mut out).unwrap();
        for (a, c) in xs.iter().zip(&out) {
            prop_assert_eq!(a.to_bits(), c.to_bits());
        }
        o.shutdown();
    }

    /// Resume-handshake idempotence: for arbitrary in-flight sets,
    /// device execution subsets, and repeated disconnect/resume cycles,
    /// the watermark split is exact — the replay set is precisely the
    /// provably-unexecuted seqs (no executed frame is ever replayed =
    /// no duplicate execution), everything at or below the watermark
    /// fails conservatively with `TargetLost`, and every offload ends
    /// with exactly one terminal outcome (no lost frame, no leak).
    #[test]
    fn prop_resume_handshake_idempotent(
        n in 1usize..20,
        exec_bits in proptest::collection::vec(any::<u64>(), 3..4),
        result_bits in proptest::collection::vec(any::<u64>(), 3..4),
    ) {
        use std::collections::BTreeMap;

        let core = ChannelCore::unbounded()
            .with_recovery(RecoveryPolicy::replay_only(8));
        let lost_err = OffloadError::TargetLost(NodeId(9));
        let offload_header = |seq: u64, len: usize| MsgHeader {
            handler_key: HandlerKey(1),
            payload_len: len as u32,
            kind: MsgKind::Offload,
            reply_slot: 0,
            corr: 0,
            seq,
        };

        // Post n offloads onto the wire (reserve + replay-buffer store).
        let mut live: Vec<u64> = Vec::new();
        for _ in 0..n {
            let Reserve::Reserved(r) =
                core.try_reserve(false, 0, SimTime::ZERO, 8)
            else {
                panic!("unbounded reserve refused");
            };
            let frame = vec![r.seq as u8];
            core.note_sent(
                r.seq,
                &offload_header(r.seq, frame.len()),
                PooledFrame::detached(frame),
            );
            live.push(r.seq);
        }

        #[derive(Debug, PartialEq)]
        enum Terminal { Completed, Lost }
        let mut terminal: BTreeMap<u64, Terminal> = BTreeMap::new();
        let mut executed: Vec<u64> = Vec::new();
        let mut wm: Option<u64> = None;

        for cycle in 0..exec_bits.len() {
            // The device executes an arbitrary subset of what's on the
            // wire; its watermark is the max executed seq (monotonic
            // across sessions). A subset of those results reach the
            // host before the link dies.
            for &seq in &live {
                if exec_bits[cycle] >> (seq % 64) & 1 == 1 {
                    prop_assert!(
                        !executed.contains(&seq),
                        "model error: seq {} executed twice", seq
                    );
                    executed.push(seq);
                    wm = Some(wm.map_or(seq, |w| w.max(seq)));
                    if result_bits[cycle] >> (seq % 64) & 1 == 1 {
                        core.deposit(seq, vec![seq as u8]);
                        let done = core.take_completed(seq).unwrap().unwrap();
                        prop_assert_eq!(done.as_slice(), &[seq as u8][..]);
                        prop_assert_eq!(
                            terminal.insert(seq, Terminal::Completed), None,
                            "double completion"
                        );
                    }
                }
            }
            live.retain(|s| terminal.get(s) != Some(&Terminal::Completed));

            // Disconnect → resume against the announced watermark.
            let expected_replay: Vec<u64> = live
                .iter()
                .copied()
                .filter(|&s| wm.is_none() || s > wm.unwrap())
                .collect();
            let expected_lost: Vec<u64> = live
                .iter()
                .copied()
                .filter(|&s| wm.is_some_and(|w| s <= w))
                .collect();
            prop_assert!(core.degrade(lost_err.clone()).is_some());
            let rep = core.resume(wm, lost_err.clone()).unwrap();
            let replayed: Vec<u64> = rep.replay.iter().map(|f| f.seq).collect();
            prop_assert_eq!(&replayed, &expected_replay,
                "replay set must be exactly the seqs above the watermark");
            prop_assert_eq!(rep.lost, expected_lost.len());
            // The heart of exactly-once: nothing the device executed is
            // ever replayed.
            for s in &replayed {
                prop_assert!(!executed.contains(s),
                    "seq {} replayed after execution", s);
            }
            // Replayed wire images are the original bytes, attempts bump.
            for f in &rep.replay {
                prop_assert_eq!(&f.frame, &vec![f.seq as u8]);
                prop_assert!(f.attempt >= 1);
            }
            for s in expected_lost {
                let out = core.take_completed(s).unwrap();
                prop_assert_eq!(out.unwrap_err(), lost_err.clone());
                prop_assert_eq!(
                    terminal.insert(s, Terminal::Lost), None,
                    "double terminal outcome"
                );
            }
            live = expected_replay;
        }

        // The final session serves everything still in flight.
        for seq in live {
            core.deposit(seq, vec![seq as u8]);
            prop_assert!(core.take_completed(seq).unwrap().is_ok());
            prop_assert_eq!(terminal.insert(seq, Terminal::Completed), None);
        }
        prop_assert_eq!(terminal.len(), n, "every offload has one outcome");
        prop_assert_eq!(core.in_flight(), 0, "nothing leaks");
    }
}
