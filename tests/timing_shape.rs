//! End-to-end timing-shape checks through the public API: the ordering
//! and magnitude relations of the paper's evaluation must hold for any
//! user of the crate, not just the calibrated benchmarks.

use aurora_workloads::kernels::whoami;
use ham::f2f;
use ham_aurora_repro::{dma_offload, veo_offload, NodeId, Offload};

fn steady_state_offload_us(o: &Offload, reps: u32) -> f64 {
    for _ in 0..10 {
        o.sync(NodeId(1), f2f!(whoami)).unwrap();
    }
    let t0 = o.backend().host_clock().now();
    for _ in 0..reps {
        o.sync(NodeId(1), f2f!(whoami)).unwrap();
    }
    (o.backend().host_clock().now() - t0).as_us_f64() / reps as f64
}

#[test]
fn dma_offload_is_single_digit_microseconds() {
    let o = dma_offload(1, aurora_workloads::register_all);
    let us = steady_state_offload_us(&o, 50);
    assert!(us > 4.0 && us < 8.0, "DMA offload = {us} us");
    o.shutdown();
}

#[test]
fn veo_offload_is_hundreds_of_microseconds() {
    let o = veo_offload(1, aurora_workloads::register_all);
    let us = steady_state_offload_us(&o, 20);
    assert!(us > 300.0 && us < 600.0, "VEO offload = {us} us");
    o.shutdown();
}

#[test]
fn protocols_differ_by_the_paper_factor() {
    let dma = dma_offload(1, aurora_workloads::register_all);
    let veo = veo_offload(1, aurora_workloads::register_all);
    let ratio = steady_state_offload_us(&veo, 20) / steady_state_offload_us(&dma, 20);
    assert!(
        ratio > 55.0 && ratio < 90.0,
        "VEO/DMA cost ratio = {ratio} (paper: 70.8)"
    );
    dma.shutdown();
    veo.shutdown();
}

#[test]
fn put_get_costs_scale_with_size() {
    // Bulk transfers go through VEO on both backends (§IV-B): the cost
    // of a large put dwarfs a small one by the bandwidth model.
    let o = dma_offload(1, aurora_workloads::register_all);
    let t = NodeId(1);
    let small = o.allocate::<f64>(t, 8).unwrap();
    let large = o.allocate::<f64>(t, 1 << 20).unwrap();
    let data_small = [0.0f64; 8];
    let data_large = vec![0.0f64; 1 << 20];

    let t0 = o.backend().host_clock().now();
    o.put(&data_small, small).unwrap();
    let small_cost = o.backend().host_clock().now() - t0;

    let t1 = o.backend().host_clock().now();
    o.put(&data_large, large).unwrap();
    let large_cost = o.backend().host_clock().now() - t1;

    assert!(large_cost > small_cost * 5, "{small_cost} vs {large_cost}");
    // And the small put is still dominated by the VEO base latency.
    assert!(small_cost.as_us_f64() > 80.0, "small put = {small_cost}");
    o.shutdown();
}

#[test]
fn async_offloads_overlap_on_the_virtual_timeline() {
    // Two busy kernels posted back-to-back must finish in less than
    // twice the synchronous time: the protocol's multiple slots enable
    // communication/computation overlap (Fig. 5 discussion).
    let o = dma_offload(1, aurora_workloads::register_all);
    // Synchronous baseline.
    for _ in 0..5 {
        o.sync(NodeId(1), f2f!(whoami)).unwrap();
    }
    let t0 = o.backend().host_clock().now();
    for _ in 0..4 {
        o.sync(NodeId(1), f2f!(whoami)).unwrap();
    }
    let sync_time = o.backend().host_clock().now() - t0;

    let t1 = o.backend().host_clock().now();
    let futs: Vec<_> = (0..4)
        .map(|_| o.async_(NodeId(1), f2f!(whoami)).unwrap())
        .collect();
    for f in futs {
        f.get().unwrap();
    }
    let async_time = o.backend().host_clock().now() - t1;
    assert!(
        async_time < sync_time,
        "async {async_time} !< sync {sync_time}"
    );
    o.shutdown();
}
