//! Acceptance tests for the self-tuning dataplane: the latency-SLO age
//! bound on staged batches, the adaptive watermark controller, and the
//! interaction of both with the recovery/dedup machinery.
//!
//! The SLO bound is virtual-time based, so the tests drive it by hand:
//! advance the shared [`Clock`] past the bound and call
//! [`engine::sweep`] directly. (Blocking waits go through `drain`,
//! which always flushes staged work — they would mask the SLO path.)

use aurora_workloads::kernels::whoami;
use ham::f2f;
use ham_aurora_repro::sim_core::{HealthEventKind, SimTime};
use ham_aurora_repro::{
    dma_offload_adaptive, local_offload_adaptive, local_offload_batched, tcp_offload_adaptive,
    veo_offload_adaptive, BatchConfig, FaultPlan, NodeId, RecoveryPolicy,
};
use ham_backend_dma::{DmaBackend, ProtocolConfig};
use ham_offload::chan::engine;
use ham_offload::Offload;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use veos_sim::{AuroraMachine, MachineConfig};

const SLO_US: u64 = 50;

fn machine() -> Arc<AuroraMachine> {
    AuroraMachine::small(
        1,
        MachineConfig {
            hbm_bytes: 16 << 20,
            vh_bytes: 32 << 20,
            ..Default::default()
        },
    )
}

/// Post one message (stays staged under a wide watermark), advance
/// virtual time past the SLO bound, sweep, and check the envelope left
/// on the SLO path: frame sent, counter bumped, health event logged,
/// and the member future still completes with the right result.
fn check_sweep_slo_flush(o: &Offload, label: &str) {
    let t = NodeId(1);
    // Warm the channel so credit/handshake traffic is out of the way.
    for _ in 0..2 {
        assert_eq!(o.sync(t, f2f!(whoami)).unwrap(), 1, "{label}: warmup");
    }
    let before = o.backend().metrics().snapshot();
    let fut = o.async_(t, f2f!(whoami)).unwrap();
    let staged = o.backend().metrics().snapshot();
    assert_eq!(
        staged.frames_sent - before.frames_sent,
        0,
        "{label}: message must stay staged below the watermark"
    );

    // Young accumulator: a sweep before the bound must NOT flush.
    engine::sweep(o.backend().as_ref(), t).unwrap();
    let early = o.backend().metrics().snapshot();
    assert_eq!(
        early.frames_sent - before.frames_sent,
        0,
        "{label}: sweep before the SLO bound flushed the batch"
    );

    o.backend()
        .host_clock()
        .advance(SimTime::from_us(SLO_US + 10));
    engine::sweep(o.backend().as_ref(), t).unwrap();
    let after = o.backend().metrics().snapshot();
    assert_eq!(
        after.frames_sent - before.frames_sent,
        1,
        "{label}: aged batch must flush on sweep"
    );
    assert_eq!(
        after.batch_slo_flushes - before.batch_slo_flushes,
        1,
        "{label}: SLO flush counter"
    );
    let slo_events = o
        .backend()
        .metrics()
        .health()
        .events_for(t.0)
        .into_iter()
        .filter(|e| e.kind == HealthEventKind::SloFlush)
        .count();
    assert_eq!(slo_events, 1, "{label}: slo_flush health event");
    assert_eq!(fut.get().unwrap(), 1, "{label}: member result");
}

/// The sweep-side SLO flush works identically across all four
/// transports: a staged small message never outlives `slo_micros` of
/// virtual time even when nothing else fills the accumulator.
#[test]
fn slo_flush_bounds_staged_age_on_every_backend() {
    let reg = aurora_workloads::register_all;
    let cases: Vec<(&str, Offload)> = vec![
        ("local", local_offload_adaptive(1, 64, SLO_US, reg)),
        ("veo", veo_offload_adaptive(1, 64, SLO_US, reg)),
        ("dma", dma_offload_adaptive(1, 64, SLO_US, reg)),
        ("tcp", tcp_offload_adaptive(1, 64, SLO_US, reg)),
    ];
    for (label, o) in cases {
        check_sweep_slo_flush(&o, label);
        o.shutdown();
    }
}

/// The SLO bound is independent of the adaptive controller: a static
/// watermark config with only `slo_micros` set gets the same age
/// guarantee.
#[test]
fn slo_flush_works_without_adaptive_controller() {
    let o = local_offload_batched(
        1,
        BatchConfig::up_to(64).with_slo_micros(SLO_US),
        aurora_workloads::register_all,
    );
    check_sweep_slo_flush(&o, "static+slo");
    o.shutdown();
}

/// Negative control: with no SLO configured, an aged accumulator is
/// *not* flushed by sweeps — only watermarks and blocking waits flush.
/// This is the knob-off determinism guarantee: sweeps stay read-only.
#[test]
fn sweep_never_flushes_without_slo_knob() {
    let o = local_offload_batched(1, BatchConfig::up_to(64), aurora_workloads::register_all);
    let t = NodeId(1);
    assert_eq!(o.sync(t, f2f!(whoami)).unwrap(), 1);
    let before = o.backend().metrics().snapshot();
    let fut = o.async_(t, f2f!(whoami)).unwrap();
    o.backend().host_clock().advance(SimTime::from_us(10_000));
    engine::sweep(o.backend().as_ref(), t).unwrap();
    let after = o.backend().metrics().snapshot();
    assert_eq!(
        after.frames_sent - before.frames_sent,
        0,
        "sweep flushed a staged batch with slo_micros=0"
    );
    assert_eq!(after.batch_slo_flushes, 0);
    // The blocking wait still drains it, as ever.
    assert_eq!(fut.get().unwrap(), 1);
    o.shutdown();
}

/// Stage-side trip: when a *new* message lands on an accumulator whose
/// first member is already older than the bound, the post itself
/// flushes — no sweep needed.
#[test]
fn aged_accumulator_flushes_on_next_post() {
    let o = local_offload_adaptive(1, 64, SLO_US, aurora_workloads::register_all);
    let t = NodeId(1);
    assert_eq!(o.sync(t, f2f!(whoami)).unwrap(), 1);
    let before = o.backend().metrics().snapshot();
    let f1 = o.async_(t, f2f!(whoami)).unwrap();
    o.backend()
        .host_clock()
        .advance(SimTime::from_us(SLO_US * 2));
    let f2 = o.async_(t, f2f!(whoami)).unwrap();
    let after = o.backend().metrics().snapshot();
    assert_eq!(
        after.frames_sent - before.frames_sent,
        1,
        "posting onto an over-age accumulator must flush it inline"
    );
    assert_eq!(after.batch_slo_flushes - before.batch_slo_flushes, 1);
    for r in o.wait_all(vec![f1, f2]) {
        assert_eq!(r.unwrap(), 1);
    }
    o.shutdown();
}

/// Drive the controller through a full narrow → widen cycle with
/// scripted traffic and return the observable counters. Sparse
/// SLO-flushed singles must narrow the watermark; dense full-envelope
/// waves must widen it back to the ceiling.
fn narrow_widen_cycle() -> (u64, u64, u64, usize, usize) {
    let o = local_offload_adaptive(1, 8, SLO_US, aurora_workloads::register_all);
    let t = NodeId(1);
    assert_eq!(o.sync(t, f2f!(whoami)).unwrap(), 1);
    let chan = o.backend().channel(t).unwrap();
    assert_eq!(chan.effective_watermark(), 8, "controller starts wide");

    // Sparse phase: four lone messages, each flushed by the SLO bound.
    // The controller ticks on the 4th flush and must narrow.
    for _ in 0..4 {
        let fut = o.async_(t, f2f!(whoami)).unwrap();
        o.backend()
            .host_clock()
            .advance(SimTime::from_us(SLO_US + 10));
        engine::sweep(o.backend().as_ref(), t).unwrap();
        assert_eq!(fut.get().unwrap(), 1);
    }
    let chan = o.backend().channel(t).unwrap();
    let narrowed = chan.effective_watermark();
    assert!(
        narrowed < 8,
        "SLO-flushed sparse traffic must narrow the watermark, still at {narrowed}"
    );

    // Dense phase: waves sized to the *current* watermark so every
    // envelope leaves full. Enough waves for several controller ticks
    // (the first dense window still holds the last sparse SLO flush,
    // which costs one more narrow before the climb); with flush latency
    // far under the SLO the controller must widen back past where the
    // sparse phase left it.
    for _ in 0..16 {
        let wave = o.backend().channel(t).unwrap().effective_watermark();
        let futures: Vec<_> = (0..wave)
            .map(|_| o.async_(t, f2f!(whoami)).unwrap())
            .collect();
        for r in o.wait_all(futures) {
            assert_eq!(r.unwrap(), 1);
        }
    }
    let chan = o.backend().channel(t).unwrap();
    let widened = chan.effective_watermark();
    let snap = o.backend().metrics().snapshot();
    let narrows_logged = o
        .backend()
        .metrics()
        .health()
        .events_for(t.0)
        .iter()
        .filter(|e| e.kind == HealthEventKind::BatchNarrow)
        .count();
    assert!(narrows_logged >= 1, "batch_narrow health event missing");
    o.shutdown();
    (
        snap.batch_widens,
        snap.batch_narrows,
        snap.batch_slo_flushes,
        narrowed,
        widened,
    )
}

/// The controller narrows under sparse SLO-flushed traffic and widens
/// back under dense full-envelope traffic, and every transition is
/// observable (counters + health events).
#[test]
fn controller_narrows_then_widens_with_traffic_shape() {
    let (widens, narrows, slo_flushes, narrowed, widened) = narrow_widen_cycle();
    assert!(narrows >= 1, "no narrow recorded");
    assert!(
        widens >= 1,
        "no widen recorded: watermark stuck at {narrowed}"
    );
    assert!(slo_flushes >= 4, "sparse phase must trip the SLO 4 times");
    assert!(
        widened > narrowed,
        "dense traffic must widen back: {narrowed} -> {widened}"
    );
}

/// The controller is a pure function of virtual-time state: two
/// identical scripted runs produce byte-identical counter trajectories.
#[test]
fn controller_decisions_are_deterministic() {
    let a = narrow_widen_cycle();
    let b = narrow_widen_cycle();
    assert_eq!(a, b, "adaptive controller diverged between identical runs");
}

static EXECUTIONS: AtomicU64 = AtomicU64::new(0);

ham::ham_kernel! {
    /// Counts every execution: a replayed carrier must not re-run a
    /// member that already executed (dedup watermark), adaptive or not.
    pub fn counted_echo(_ctx, x: u64) -> u64 {
        EXECUTIONS.fetch_add(1, Ordering::SeqCst);
        x
    }
}

/// Watermark movement must never violate the carrier-seq dedup
/// contract: under seeded frame drops with the adaptive controller
/// armed (so effective watermarks shift mid-run), every offload still
/// executes exactly once and nothing times out.
#[test]
fn adaptive_watermarks_preserve_exactly_once_under_faults() {
    let mut any_resend = false;
    for seed in [7u64, 42, 1234, 9001] {
        let plan = FaultPlan::builder(seed).tlp_drop(0.25).build();
        let o = Offload::new(DmaBackend::spawn_with_faults(
            machine(),
            0,
            &[0],
            ProtocolConfig::default().with_batch(BatchConfig::adaptive_up_to(4, 200)),
            plan,
            Some(RecoveryPolicy {
                retry_after_misses: 64,
                max_retries: 4,
            }),
            |b| {
                b.register::<counted_echo>();
            },
        ));
        let t = NodeId(1);
        let before = EXECUTIONS.load(Ordering::SeqCst);
        let futures: Vec<_> = (0..64u64)
            .map(|i| o.async_(t, f2f!(counted_echo, i)).unwrap())
            .collect();
        for (i, r) in o.wait_all(futures).into_iter().enumerate() {
            assert_eq!(r.unwrap(), i as u64, "seed {seed}: member {i} result");
        }
        let snap = o.backend().metrics().snapshot();
        assert_eq!(snap.timeouts, 0, "seed {seed}: retries must recover");
        assert_eq!(o.in_flight(t).unwrap(), 0, "seed {seed}: leaked entries");
        assert_eq!(
            EXECUTIONS.load(Ordering::SeqCst) - before,
            64,
            "seed {seed}: members re-executed or lost under adaptive watermarks"
        );
        any_resend |= snap.resends >= 1;
        o.shutdown();
    }
    assert!(any_resend, "no seed injected a drop — pick other seeds");
}

static PROP_EXECUTIONS: AtomicU64 = AtomicU64::new(0);

ham::ham_kernel! {
    /// Echo with its own execution counter (separate from
    /// [`counted_echo`]: the two tests run concurrently and deltas on a
    /// shared counter would interleave).
    pub fn prop_echo(_ctx, x: u64) -> u64 {
        PROP_EXECUTIONS.fetch_add(1, Ordering::SeqCst);
        x
    }
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]

    /// Generalization of the seeded test above: for *any* fault seed,
    /// watermark ceiling, SLO bound and drop rate, adaptive watermark
    /// movement keeps the carrier-seq dedup contract — every member
    /// executes exactly once, nothing times out or leaks, and the
    /// effective watermark never escapes `[1, ceil]`.
    #[test]
    fn prop_adaptive_watermarks_keep_dedup_invariants(
        seed in proptest::prelude::any::<u64>(),
        ceil in 1usize..9,
        slo_us in 50u64..400,
        drop_pct in 0u32..26,
    ) {
        let plan = FaultPlan::builder(seed)
            .tlp_drop(f64::from(drop_pct) / 100.0)
            .build();
        let o = Offload::new(DmaBackend::spawn_with_faults(
            machine(),
            0,
            &[0],
            ProtocolConfig::default().with_batch(BatchConfig::adaptive_up_to(ceil, slo_us)),
            plan,
            Some(RecoveryPolicy {
                retry_after_misses: 64,
                max_retries: 8,
            }),
            |b| {
                b.register::<prop_echo>();
            },
        ));
        let t = NodeId(1);
        let before = PROP_EXECUTIONS.load(Ordering::SeqCst);
        let futures: Vec<_> = (0..32u64)
            .map(|i| o.async_(t, f2f!(prop_echo, i)).unwrap())
            .collect();
        for (i, r) in o.wait_all(futures).into_iter().enumerate() {
            proptest::prop_assert_eq!(r.unwrap(), i as u64, "member {} result", i);
        }
        let wm = o.backend().channel(t).unwrap().effective_watermark();
        proptest::prop_assert!(
            (1..=ceil).contains(&wm),
            "watermark {} escaped [1, {}]", wm, ceil
        );
        let snap = o.backend().metrics().snapshot();
        proptest::prop_assert_eq!(snap.timeouts, 0, "retries must recover");
        proptest::prop_assert_eq!(o.in_flight(t).unwrap(), 0, "leaked entries");
        proptest::prop_assert_eq!(
            PROP_EXECUTIONS.load(Ordering::SeqCst) - before,
            32,
            "members re-executed or lost under adaptive watermarks"
        );
        o.shutdown();
    }
}
