//! Cluster-TCP reconnection matrix (ROADMAP: cluster-scale TCP).
//!
//! Every scenario runs against a real loopback-TCP cluster target
//! ([`TcpBackend::spawn_cluster`]) whose link is killed at seeded
//! points. The invariants checked after every run:
//!
//! * **exactly-once**: every offload either completes successfully and
//!   its kernel executed exactly once, or it surfaces
//!   [`OffloadError::TargetLost`] and its kernel executed at most once —
//!   never twice, even though frames are replayed on resume;
//! * **no leaks**: the channel's in-flight count drains to zero;
//! * **determinism** (replay-after-idle-disconnect scenario): two runs
//!   with the same seed produce bit-identical executed-tag sets and
//!   outcome vectors.
//!
//! The satellite regression at the bottom pins the reconnect budget:
//! a disconnect evicts only after exactly `RecoveryPolicy::max_retries`
//! failed reconnect attempts — never on the first EOF.

use aurora_sim_core::FaultPlan;
use ham::f2f;
use ham_aurora_repro::{
    BatchConfig, NodeId, Offload, OffloadError, RecoveryPolicy, TargetSpec, TargetState,
};
use ham_backend_tcp::TcpBackend;
use ham_offload::backend::CommBackend;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Global execution log: the kernel appends its tag on the (in-process)
/// target, so the host side can prove at-most-once execution under
/// replay. Tags are unique per scenario × seed × offload.
static EXECUTED: OnceLock<Mutex<Vec<u64>>> = OnceLock::new();

fn executed() -> &'static Mutex<Vec<u64>> {
    EXECUTED.get_or_init(|| Mutex::new(Vec::new()))
}

ham::ham_kernel! {
    pub fn record_tag(_ctx, tag: u64) -> u64 {
        executed().lock().unwrap().push(tag);
        tag
    }
}

fn registrar(b: &mut ham::RegistryBuilder) {
    b.register::<record_tag>();
}

/// Deterministic per-scenario PRNG (wave sizes, kill points).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Unique tag block per scenario run, so parallel tests sharing the
/// global log never collide.
fn tag_base(scenario: u64, seed: u64) -> u64 {
    (scenario << 48) | (seed << 24)
}

fn exec_count(tag: u64) -> usize {
    executed()
        .lock()
        .unwrap()
        .iter()
        .filter(|&&t| t == tag)
        .count()
}

fn cluster(budget: u32, batch: BatchConfig) -> (Offload, Arc<TcpBackend>) {
    let backend = TcpBackend::spawn_cluster_batched(
        &[TargetSpec::default()],
        RecoveryPolicy::replay_only(budget),
        batch,
        FaultPlan::none(),
        registrar,
    );
    (
        Offload::new(Arc::clone(&backend) as Arc<dyn CommBackend>),
        backend,
    )
}

fn wait_until(limit: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < limit {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    cond()
}

/// The shared post-run check: every offload completed exactly once or
/// surfaced `TargetLost` with at most one execution; nothing leaked.
fn check_exactly_once(outcomes: &[(u64, Result<u64, OffloadError>)]) {
    for (tag, outcome) in outcomes {
        let count = exec_count(*tag);
        match outcome {
            Ok(v) => {
                assert_eq!(v, tag, "result routed to the wrong offload");
                assert_eq!(
                    count, 1,
                    "tag {tag:#x}: completed offloads execute exactly once"
                );
            }
            Err(OffloadError::TargetLost(_)) => {
                assert!(
                    count <= 1,
                    "tag {tag:#x}: TargetLost offload executed {count} times"
                );
            }
            Err(e) => panic!("tag {tag:#x}: unexpected error {e:?}"),
        }
    }
}

fn drained(o: &Offload, t: NodeId) {
    assert_eq!(o.in_flight(t).unwrap(), 0, "leaked pending entries");
}

/// Scenario 1: the link dies mid-wave, with offloads on the wire. The
/// link supervisor reconnects (the target re-accepts immediately) and
/// replays what the watermark proves unexecuted.
fn run_mid_batch_disconnect(seed: u64) {
    let (o, _be) = cluster(64, BatchConfig::default());
    let t = NodeId(1);
    let mut lcg = Lcg(seed);
    let base = tag_base(1, seed);
    let n = 16 + (lcg.next() % 16) as usize;
    let kill_at = 2 + (lcg.next() as usize % (n / 2));
    let mut outcomes = Vec::new();
    let mut futs = Vec::new();
    for i in 0..n {
        if i == kill_at {
            o.kill_target(t).unwrap();
        }
        let tag = base + i as u64;
        match o.async_(t, f2f!(record_tag, tag)) {
            Ok(f) => futs.push((tag, f)),
            Err(e) => outcomes.push((tag, Err(e))),
        }
    }
    for (tag, f) in futs {
        outcomes.push((tag, f.get()));
    }
    check_exactly_once(&outcomes);
    drained(&o, t);
    o.shutdown();
}

/// Scenario 2: the link dies while a batch accumulator holds staged
/// messages that never reached the wire. They must survive the
/// degradation and flush after resume — all complete exactly once.
fn run_disconnect_during_staged_accumulator(seed: u64) {
    let (o, _be) = cluster(64, BatchConfig::up_to(16));
    let t = NodeId(1);
    let mut lcg = Lcg(seed ^ 0x5eed);
    let base = tag_base(2, seed);
    // Fewer posts than the batch watermark: everything stages.
    let n = 2 + (lcg.next() % 8) as usize;
    let mut futs = Vec::new();
    for i in 0..n {
        let tag = base + i as u64;
        futs.push((tag, o.async_(t, f2f!(record_tag, tag)).unwrap()));
    }
    o.kill_target(t).unwrap();
    let mut outcomes = Vec::new();
    for (tag, f) in futs {
        outcomes.push((tag, f.get()));
    }
    // Staged messages were never on the wire, so the watermark clears
    // every one of them: no TargetLost outcomes are acceptable here.
    for (tag, outcome) in &outcomes {
        assert!(outcome.is_ok(), "staged tag {tag:#x} lost: {outcome:?}");
    }
    check_exactly_once(&outcomes);
    drained(&o, t);
    o.shutdown();
}

/// Scenario 3: the link dies, heals, and dies again with replayed work
/// in flight. Exactly-once must hold across both resume handshakes.
fn run_double_disconnect(seed: u64) {
    let (o, be) = cluster(64, BatchConfig::default());
    let t = NodeId(1);
    let mut lcg = Lcg(seed ^ 0xd0b1e);
    let base = tag_base(3, seed);
    let n = 12 + (lcg.next() % 8) as usize;
    let mut outcomes = Vec::new();
    let mut futs = Vec::new();
    for i in 0..n {
        let tag = base + i as u64;
        match o.async_(t, f2f!(record_tag, tag)) {
            Ok(f) => futs.push((tag, f)),
            Err(e) => outcomes.push((tag, Err(e))),
        }
        if i == 2 {
            o.kill_target(t).unwrap();
        }
    }
    // Wait for the first reconnect to land, then cut the fresh link.
    assert!(
        wait_until(Duration::from_secs(10), || {
            be.metrics().snapshot().reconnects >= 1
        }),
        "first reconnect never happened"
    );
    o.kill_target(t).unwrap();
    for (tag, f) in futs {
        outcomes.push((tag, f.get()));
    }
    check_exactly_once(&outcomes);
    drained(&o, t);
    // The futures can all settle before the supervisor wakes from its
    // backoff sleep, so the second heal is awaited, not asserted
    // instantaneously.
    assert!(
        wait_until(Duration::from_secs(10), || {
            be.metrics().snapshot().reconnects >= 2
        }),
        "second disconnect must reconnect again"
    );
    o.shutdown();
}

/// Scenario 4: the target is unreachable for a while (blackout burns
/// reconnect attempts), then comes back before the budget runs out.
/// The late reconnect still resumes and completes the parked work.
fn run_reconnect_after_timeout(seed: u64) {
    let (o, be) = cluster(200, BatchConfig::default());
    let t = NodeId(1);
    let mut lcg = Lcg(seed ^ 0x71e0);
    let base = tag_base(4, seed);
    let n = 4 + (lcg.next() % 6) as usize;
    let mut futs = Vec::new();
    for i in 0..n {
        let tag = base + i as u64;
        futs.push((tag, o.async_(t, f2f!(record_tag, tag)).unwrap()));
    }
    be.block_reconnect(t, true).unwrap();
    o.kill_target(t).unwrap();
    // Let a few attempts fail against the blackout before healing.
    assert!(
        wait_until(Duration::from_secs(10), || {
            be.metrics().snapshot().reconnect_attempts >= 2
        }),
        "no reconnect attempts recorded during blackout"
    );
    be.block_reconnect(t, false).unwrap();
    let mut outcomes = Vec::new();
    for (tag, f) in futs {
        outcomes.push((tag, f.get()));
    }
    check_exactly_once(&outcomes);
    drained(&o, t);
    // The in-flight work can settle (executed-before-kill results, or
    // watermarked `TargetLost`) before the supervisor's next backoff
    // attempt lands on the now-unblocked listener, so the heal is
    // awaited, not asserted instantaneously.
    assert!(
        wait_until(Duration::from_secs(10), || {
            be.metrics().snapshot().reconnects >= 1
        }),
        "the healed link must reconnect"
    );
    assert!(
        wait_until(Duration::from_secs(10), || {
            be.metrics().health().state(t.0) == Some(TargetState::Healthy)
        }),
        "Degraded heals back to Healthy on reconnect"
    );
    o.shutdown();
}

#[test]
fn mid_batch_disconnect_matrix() {
    for seed in 1..=8 {
        run_mid_batch_disconnect(seed);
    }
}

#[test]
fn disconnect_during_staged_accumulator_matrix() {
    for seed in 1..=8 {
        run_disconnect_during_staged_accumulator(seed);
    }
}

#[test]
fn double_disconnect_matrix() {
    for seed in 1..=8 {
        run_double_disconnect(seed);
    }
}

#[test]
fn reconnect_after_timeout_matrix() {
    for seed in 1..=8 {
        run_reconnect_after_timeout(seed);
    }
}

/// Replay determinism: kill the link while the channel is idle, then
/// post a wave. Nothing was in flight at the disconnect, so the resume
/// replays a well-defined set and every offload completes. Two runs
/// with the same seed must produce bit-identical outcome vectors and
/// executed-tag sets.
#[test]
fn replayed_timelines_are_deterministic() {
    let run = |seed: u64, instance: u64| -> (Vec<u64>, Vec<bool>) {
        let (o, _be) = cluster(64, BatchConfig::default());
        let t = NodeId(1);
        let mut lcg = Lcg(seed ^ 0xde7e);
        let base = tag_base(5 + instance, seed);
        let n = 8 + (lcg.next() % 8) as usize;
        o.kill_target(t).unwrap();
        let mut futs = Vec::new();
        for i in 0..n {
            let tag = base + i as u64;
            futs.push((tag, o.async_(t, f2f!(record_tag, tag)).unwrap()));
        }
        let outcomes: Vec<(u64, Result<u64, OffloadError>)> =
            futs.into_iter().map(|(tag, f)| (tag, f.get())).collect();
        check_exactly_once(&outcomes);
        drained(&o, t);
        o.shutdown();
        let mut tags: Vec<u64> = outcomes
            .iter()
            .filter(|(tag, _)| exec_count(*tag) == 1)
            .map(|(tag, _)| tag - base)
            .collect();
        tags.sort_unstable();
        let oks: Vec<bool> = outcomes.iter().map(|(_, r)| r.is_ok()).collect();
        (tags, oks)
    };
    for seed in 1..=4 {
        let (tags_a, oks_a) = run(seed, 0);
        let (tags_b, oks_b) = run(seed, 1);
        assert_eq!(
            tags_a, tags_b,
            "seed {seed}: executed-tag timelines diverge"
        );
        assert_eq!(oks_a, oks_b, "seed {seed}: outcome vectors diverge");
        assert!(
            oks_a.iter().all(|&ok| ok),
            "idle-disconnect waves replay fully"
        );
    }
}

/// Satellite regression: a disconnect must route through the
/// `RecoveryPolicy` before evicting. With reconnects blacked out and a
/// budget of 3, the target goes `Degraded` on EOF, burns exactly 3
/// attempts, and only then latches `Evicted` — the reader thread never
/// evicts on the first EOF.
#[test]
fn eviction_waits_for_the_reconnect_budget() {
    // Posts stage in the accumulator (watermark 16, never reached, and
    // no blocking wait runs before the kill), so none can complete
    // before the disconnect — every outcome is deterministically
    // `TargetLost` once the budget evicts the target.
    let (o, be) = cluster(3, BatchConfig::up_to(16));
    let t = NodeId(1);
    let base = tag_base(9, 0);
    let mut futs = Vec::new();
    for i in 0..3u64 {
        futs.push((base + i, o.async_(t, f2f!(record_tag, base + i)).unwrap()));
    }
    be.block_reconnect(t, true).unwrap();
    o.kill_target(t).unwrap();
    // Degraded first (the disconnect), evicted only after the budget.
    assert!(
        wait_until(Duration::from_secs(10), || {
            be.metrics().health().state(t.0) == Some(TargetState::Evicted)
        }),
        "budget exhaustion must evict"
    );
    let snap = be.metrics().snapshot();
    assert_eq!(
        snap.reconnect_attempts, 3,
        "every budgeted attempt runs before eviction, and none after"
    );
    assert_eq!(snap.reconnects, 0, "blackout: no attempt succeeds");
    assert_eq!(snap.evictions, 1);
    let events = be.metrics().health().events_for(t.0);
    let disconnect_at = events
        .iter()
        .position(|e| e.kind == ham_aurora_repro::HealthEventKind::Disconnect)
        .expect("a Disconnect event precedes eviction");
    let eviction_at = events
        .iter()
        .position(|e| e.kind == ham_aurora_repro::HealthEventKind::Eviction)
        .expect("an Eviction event after the budget");
    assert!(
        disconnect_at < eviction_at,
        "Degraded strictly before Evicted"
    );
    // Every in-flight offload fails with TargetLost; none leak, and
    // none executed twice.
    let outcomes: Vec<(u64, Result<u64, OffloadError>)> =
        futs.into_iter().map(|(tag, f)| (tag, f.get())).collect();
    for (_, outcome) in &outcomes {
        assert!(
            matches!(outcome, Err(OffloadError::TargetLost(_))),
            "evicted target fails in-flight work with TargetLost: {outcome:?}"
        );
    }
    check_exactly_once(&outcomes);
    drained(&o, t);
    o.shutdown();
}

/// Discovery: the announce handshake populates a multi-host pool with
/// per-host capabilities — credit limits and lane counts surface in the
/// channel cores and node descriptors.
#[test]
fn discovery_announces_per_host_capabilities() {
    let specs = [
        TargetSpec {
            lanes: 2,
            credit_limit: 7,
            mem_bytes: 1 << 20,
            ..TargetSpec::default()
        },
        TargetSpec {
            lanes: 16,
            credit_limit: 64,
            mem_bytes: 2 << 20,
            ..TargetSpec::default()
        },
    ];
    let backend = TcpBackend::spawn_cluster(
        &specs,
        RecoveryPolicy::replay_only(4),
        FaultPlan::none(),
        registrar,
    );
    let o = Offload::new(Arc::clone(&backend) as Arc<dyn CommBackend>);
    for (i, spec) in specs.iter().enumerate() {
        let node = NodeId((i + 1) as u16);
        let chan = backend.channel(node).unwrap();
        assert_eq!(chan.credit_limit(), spec.credit_limit as usize);
        let d = o.get_node_descriptor(node).unwrap();
        assert_eq!(d.cores, spec.lanes, "lanes surface as cores");
        assert_eq!(d.memory_bytes, spec.mem_bytes);
    }
    // Both hosts execute work; probes record health observations.
    let base = tag_base(10, 0);
    let a = o.async_(NodeId(1), f2f!(record_tag, base)).unwrap();
    let b = o.async_(NodeId(2), f2f!(record_tag, base + 1)).unwrap();
    assert_eq!(a.get().unwrap(), base);
    assert_eq!(b.get().unwrap(), base + 1);
    backend.probe(NodeId(1)).unwrap();
    backend.probe(NodeId(2)).unwrap();
    assert!(be_has_probe(&backend, 1) && be_has_probe(&backend, 2));
    o.shutdown();
}

fn be_has_probe(be: &TcpBackend, node: u16) -> bool {
    be.metrics()
        .health()
        .events_for(node)
        .iter()
        .any(|e| e.kind == ham_aurora_repro::HealthEventKind::Probe)
}
