//! End-to-end checks of the flight-recorder telemetry: span-tree
//! well-formedness for a real offload through the DMA protocol, Chrome
//! trace-event export round-trip, and the always-on metric registers.

use aurora_sim_core::trace;
use aurora_workloads::kernels::whoami;
use ham::f2f;
use ham_aurora_repro::{dma_offload, NodeId};

#[test]
fn offload_span_tree_is_well_formed() {
    let o = dma_offload(1, aurora_workloads::register_all);
    for _ in 0..10 {
        o.sync(NodeId(1), f2f!(whoami)).unwrap();
    }
    let session = trace::TraceSession::start();
    let t0 = o.backend().host_clock().now();
    let fut = o.async_(NodeId(1), f2f!(whoami)).unwrap();
    let id = fut.offload_id();
    fut.get().unwrap();
    let t1 = o.backend().host_clock().now();
    let capture = session.finish();

    assert!(id.0 != 0, "real offloads get non-zero correlation ids");
    let spans = capture.events_for_offload(id.0);
    assert!(!spans.is_empty(), "offload produced no spans");

    // Correlation reaches across the stack: host framework, VH protocol
    // side, VE protocol side (LHM/SHM + user DMA) and the PCIe wire all
    // tag their spans with the same id.
    let mut engines: Vec<&str> = spans.iter().map(|e| e.engine()).collect();
    engines.sort_unstable();
    engines.dedup();
    assert!(
        engines.len() >= 5,
        "expected >= 5 correlated components, got {engines:?}"
    );
    for expected in ["ham", "vh", "udma", "pcie"] {
        assert!(
            engines.contains(&expected),
            "missing {expected}: {engines:?}"
        );
    }

    // Well-formed tree: spans ordered by start, each within the offload's
    // end-to-end window, end >= start.
    let t0 = t0.as_ps();
    let t1 = t1.as_ps();
    for w in spans.windows(2) {
        assert!(w[0].start_ps <= w[1].start_ps, "sorted by start");
    }
    for e in &spans {
        assert!(e.end_ps >= e.start_ps, "negative span: {e:?}");
        assert!(
            e.start_ps >= t0 && e.end_ps <= t1,
            "span outside end-to-end window: {e:?}"
        );
    }

    // The non-overlapping protocol phases account for the entire
    // end-to-end cost; PCIe wire-occupancy spans are sub-spans of the
    // DMA spans that subsume them, so they are excluded from the sum.
    let phase_sum: u64 = spans
        .iter()
        .filter(|e| !e.category.starts_with("pcie."))
        .map(|e| e.duration_ps())
        .sum();
    assert!(
        phase_sum <= t1 - t0,
        "phases sum to {phase_sum} ps > end-to-end {} ps",
        t1 - t0
    );
    o.shutdown();
}

#[test]
fn chrome_export_round_trips_offload_correlation() {
    let o = dma_offload(1, aurora_workloads::register_all);
    for _ in 0..5 {
        o.sync(NodeId(1), f2f!(whoami)).unwrap();
    }
    let session = trace::TraceSession::start();
    let fut = o.async_(NodeId(1), f2f!(whoami)).unwrap();
    let id = fut.offload_id();
    fut.get().unwrap();
    let capture = session.finish();

    let doc = capture.to_chrome_json();
    let v = aurora_telemetry::json::parse(&doc).expect("chrome export must be valid JSON");
    let events = v
        .get("traceEvents")
        .expect("traceEvents array")
        .as_array()
        .expect("traceEvents is an array");

    // Every complete event carries the Chrome fields with the right types.
    let complete: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
        .collect();
    assert!(!complete.is_empty());
    for e in &complete {
        assert!(e.get("name").unwrap().as_str().is_some());
        assert!(e.get("ts").unwrap().as_f64().is_some(), "ts is a number");
        assert!(e.get("dur").unwrap().as_f64().is_some(), "dur is a number");
        assert!(e.get("pid").unwrap().as_u64().is_some(), "pid is a number");
        assert!(e.get("tid").unwrap().as_u64().is_some(), "tid is a number");
    }

    // Our offload's spans survive the export with their correlation id
    // and span >= 5 distinct engine categories.
    let ours: Vec<_> = complete
        .iter()
        .filter(|e| {
            e.get("args")
                .and_then(|a| a.get("offload_id"))
                .and_then(|v| v.as_u64())
                == Some(id.0)
        })
        .collect();
    assert!(!ours.is_empty(), "offload id lost in export");
    let mut cats: Vec<&str> = ours
        .iter()
        .map(|e| e.get("cat").unwrap().as_str().unwrap())
        .collect();
    cats.sort_unstable();
    cats.dedup();
    assert!(cats.len() >= 5, "expected >= 5 engines, got {cats:?}");

    // Round-trip against the capture: per-event fields match the source
    // span (ts/dur are microseconds of the picosecond original).
    let sample = capture.events_for_offload(id.0)[0];
    let exported = ours
        .iter()
        .find(|e| {
            e.get("name").unwrap().as_str() == Some(sample.category)
                && e.get("ts").unwrap().as_f64() == Some(sample.start_ps as f64 / 1e6)
        })
        .expect("source span present in export");
    assert_eq!(
        exported.get("dur").unwrap().as_f64(),
        Some(sample.duration_ps() as f64 / 1e6)
    );
    assert_eq!(
        exported.get("pid").unwrap().as_u64(),
        Some(sample.node as u64)
    );
    o.shutdown();
}

#[test]
fn metrics_snapshot_counts_table2_operations() {
    let o = dma_offload(1, aurora_workloads::register_all);
    for _ in 0..4 {
        o.sync(NodeId(1), f2f!(whoami)).unwrap();
    }
    let buf = o.allocate::<u64>(NodeId(1), 256).unwrap();
    let data = vec![3u64; 256];
    o.put(&data, buf).unwrap();
    let mut back = vec![0u64; 256];
    o.get(buf, &mut back).unwrap();
    assert_eq!(back, data);

    let s = o.metrics_snapshot();
    assert_eq!(s.posts, 4);
    assert_eq!(s.completions, 4);
    assert!(s.polls >= s.completions, "every completion needs a poll");
    assert_eq!(s.inflight, 0, "all offloads consumed");
    assert_eq!(s.puts, 1);
    assert_eq!(s.gets, 1);
    assert_eq!(s.bytes_put, 256 * 8);
    assert_eq!(s.bytes_get, 256 * 8);
    assert_eq!(s.allocs, 1);
    assert_eq!(s.alloc_bytes_live, 256 * 8);
    assert!(s.latency.count() == 4 && s.latency.mean() > 0.0);

    o.free(buf).unwrap();
    let s = o.metrics_snapshot();
    assert_eq!(s.frees, 1);
    assert_eq!(s.alloc_bytes_live, 0, "frees credit the gauge");
    assert!(s.alloc_bytes_peak >= 256 * 8);

    // The registers are always on — no TraceSession was active here.
    let rendered = s.render();
    assert!(rendered.contains("posts"));
    o.shutdown();
}
