//! Acceptance tests for small-message frame batching: transaction-count
//! reduction at depth, exactly-once replay of dropped batch frames, and
//! eviction when a batched frame times out.

use aurora_workloads::kernels::whoami;
use ham::f2f;
use ham_aurora_repro::{
    dma_offload, dma_offload_batched, BatchConfig, FaultPlan, NodeId, OffloadError, RecoveryPolicy,
};
use ham_backend_dma::{DmaBackend, ProtocolConfig};
use ham_offload::Offload;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use veos_sim::{AuroraMachine, MachineConfig};

fn machine() -> Arc<AuroraMachine> {
    AuroraMachine::small(
        1,
        MachineConfig {
            hbm_bytes: 16 << 20,
            vh_bytes: 32 << 20,
            ..Default::default()
        },
    )
}

/// Depth-64 pipeline on the DMA protocol: batching must cut the number
/// of wire frames (= DMA transactions + flag polls) by at least 3× and
/// must not be slower in virtual time than the per-message path.
#[test]
fn dma_depth64_batching_cuts_frames_at_least_3x() {
    let reg = aurora_workloads::register_all;
    let run = |o: &Offload| {
        let t = NodeId(1);
        for _ in 0..4 {
            o.sync(t, f2f!(whoami)).unwrap();
        }
        let before = o.backend().metrics().snapshot();
        let t0 = o.backend().host_clock().now();
        let futures: Vec<_> = (0..64)
            .map(|_| o.async_(t, f2f!(whoami)).unwrap())
            .collect();
        for r in o.wait_all(futures) {
            assert_eq!(r.unwrap(), 1);
        }
        let elapsed = o.backend().host_clock().now() - t0;
        let after = o.backend().metrics().snapshot();
        (
            after.frames_sent - before.frames_sent,
            after.msgs_sent - before.msgs_sent,
            elapsed,
        )
    };

    let plain = dma_offload(1, reg);
    let (frames_off, msgs_off, time_off) = run(&plain);
    plain.shutdown();
    assert_eq!(msgs_off, 64);
    assert_eq!(frames_off, 64, "batching off: one frame per message");

    let batched = dma_offload_batched(1, BatchConfig::up_to(16), reg);
    let (frames_on, msgs_on, time_on) = run(&batched);
    batched.shutdown();
    assert_eq!(msgs_on, 64, "every message reaches the wire");
    assert!(
        frames_on * 3 <= msgs_on,
        "expected >=3x fewer transactions: {frames_on} frames for {msgs_on} msgs"
    );
    assert!(
        time_on < time_off,
        "batched depth-64 wave must be faster: {time_on} vs {time_off}"
    );
}

static EXECUTIONS: AtomicU64 = AtomicU64::new(0);

ham::ham_kernel! {
    /// Counts every execution; a replayed-but-deduped batch must not
    /// bump the counter twice for the same member.
    pub fn counted_echo(_ctx, x: u64) -> u64 {
        EXECUTIONS.fetch_add(1, Ordering::SeqCst);
        x
    }
}

/// A dropped batch carrier frame is re-sent by the recovery policy and
/// replays **all** of its sub-messages exactly once: results stay
/// correct, nothing times out, and the execution counter matches the
/// number of distinct offloads.
#[test]
fn dropped_batch_frame_is_replayed_exactly_once() {
    let mut any_resend = false;
    for seed in [7u64, 42, 1234] {
        let plan = FaultPlan::builder(seed).tlp_drop(0.25).build();
        let o = Offload::new(DmaBackend::spawn_with_faults(
            machine(),
            0,
            &[0],
            ProtocolConfig::default().with_batch(BatchConfig::up_to(4)),
            plan,
            Some(RecoveryPolicy {
                retry_after_misses: 64,
                max_retries: 4,
            }),
            |b| {
                b.register::<counted_echo>();
            },
        ));
        let t = NodeId(1);
        let before = EXECUTIONS.load(Ordering::SeqCst);
        let futures: Vec<_> = (0..64u64)
            .map(|i| o.async_(t, f2f!(counted_echo, i)).unwrap())
            .collect();
        for (i, r) in o.wait_all(futures).into_iter().enumerate() {
            assert_eq!(r.unwrap(), i as u64, "seed {seed}: member {i} result");
        }
        let snap = o.backend().metrics().snapshot();
        assert_eq!(snap.timeouts, 0, "seed {seed}: retries must recover");
        assert_eq!(o.in_flight(t).unwrap(), 0, "seed {seed}: leaked entries");
        // Each of the 64 offloads executed exactly once, even where the
        // carrier frame was dropped and replayed (dedup watermark).
        assert_eq!(
            EXECUTIONS.load(Ordering::SeqCst) - before,
            64,
            "seed {seed}: members re-executed or lost"
        );
        any_resend |= snap.resends >= 1;
        o.shutdown();
    }
    assert!(any_resend, "no seed injected a drop — pick other seeds");
}

/// Total frame loss under batching: the batch carrier exhausts its
/// retry budget, every member future settles with `Timeout`, the target
/// is evicted exactly once, and later posts fail fast with
/// `TargetLost` — no hangs, no leaked pending entries.
#[test]
fn total_loss_of_batched_frames_times_out_and_evicts() {
    let plan = FaultPlan::builder(99).tlp_drop(1.0).build();
    let o = Offload::new(DmaBackend::spawn_with_faults(
        machine(),
        0,
        &[0],
        ProtocolConfig::default().with_batch(BatchConfig::up_to(8)),
        plan,
        Some(RecoveryPolicy {
            retry_after_misses: 32,
            max_retries: 2,
        }),
        aurora_workloads::register_all,
    ));
    let t = NodeId(1);
    let futures: Vec<_> = (0..8).map(|_| o.async_(t, f2f!(whoami)).unwrap()).collect();
    let mut timeouts = 0;
    for r in o.wait_all(futures) {
        match r.unwrap_err() {
            OffloadError::Timeout => timeouts += 1,
            OffloadError::TargetLost(n) => assert_eq!(n, t),
            other => panic!("unexpected error: {other}"),
        }
    }
    assert!(timeouts >= 1, "carrier timeout must fan out to members");
    let snap = o.backend().metrics().snapshot();
    assert_eq!(snap.evictions, 1, "one eviction for the lost target");
    assert!(snap.resends >= 1, "the carrier was never re-sent");
    assert_eq!(o.in_flight(t).unwrap(), 0, "leaked pending entries");
    let err = o.sync(t, f2f!(whoami)).unwrap_err();
    assert!(matches!(err, OffloadError::TargetLost(NodeId(1))), "{err}");
    o.shutdown();
}

/// The implicit-flush contract across *channels*: futures in one wait
/// set may be staged in different targets' accumulators, and a blocking
/// wait must flush every involved channel — not just the first one —
/// or the later futures spin on frames that never left the host.
#[test]
fn wait_any_flushes_staged_batches_on_every_involved_target() {
    let o = ham_aurora_repro::local_offload_batched(
        2,
        BatchConfig::up_to(16),
        aurora_workloads::register_all,
    );
    // One staged (unflushed — watermark is 16) message per target.
    let mut futures = vec![
        o.async_(NodeId(1), f2f!(whoami)).unwrap(),
        o.async_(NodeId(2), f2f!(whoami)).unwrap(),
    ];
    let mut served = Vec::new();
    while let Some(i) = o.wait_any(&mut futures) {
        served.push(futures.remove(i).get().unwrap());
    }
    served.sort_unstable();
    assert_eq!(served, vec![1, 2], "both targets' batches were flushed");
    o.shutdown();
}

/// Same contract through `wait_all`: staged messages spread over two
/// accumulators all complete in one blocking wait.
#[test]
fn wait_all_flushes_staged_batches_across_targets() {
    let o = ham_aurora_repro::local_offload_batched(
        2,
        BatchConfig::up_to(16),
        aurora_workloads::register_all,
    );
    let futures: Vec<_> = (0..8)
        .map(|i| o.async_(NodeId(1 + (i % 2)), f2f!(whoami)).unwrap())
        .collect();
    let mut nodes: Vec<u16> = o
        .wait_all(futures)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    nodes.sort_unstable();
    assert_eq!(nodes, vec![1, 1, 1, 1, 2, 2, 2, 2]);
    o.shutdown();
}
