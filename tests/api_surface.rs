//! Table II API surface: every listed operation works on every backend.

use ham::f2f;
use ham_aurora_repro::{dma_offload, local_offload, veo_offload, NodeId, Offload};
use ham_offload::types::DeviceType;

ham::ham_kernel! {
    pub fn which_node(ctx) -> u16 { ctx.node }
}

ham::ham_kernel! {
    pub fn sum_buffer(ctx, addr: u64, n: u64) -> f64 {
        ctx.mem.read_f64s(addr, n as usize).unwrap().iter().sum()
    }
}

fn registrar(b: &mut ham::RegistryBuilder) {
    b.register::<which_node>();
    b.register::<sum_buffer>();
}

fn exercise_table2(offload: &Offload, expect_device: DeviceType) {
    let target = NodeId(1);

    // num_nodes / this_node / get_node_descriptor.
    assert!(offload.num_nodes() >= 2);
    assert_eq!(offload.this_node(), NodeId::HOST);
    let desc = offload.get_node_descriptor(target).unwrap();
    assert_eq!(desc.device_type, expect_device);
    assert_eq!(desc.node, target);

    // sync.
    assert_eq!(offload.sync(target, f2f!(which_node)).unwrap(), 1);

    // async + future test()/get().
    let mut fut = offload.async_(target, f2f!(which_node)).unwrap();
    while !fut.test() {
        std::thread::yield_now();
    }
    assert_eq!(fut.get().unwrap(), 1);

    // allocate / put / get / free.
    let buf = offload.allocate::<f64>(target, 8).unwrap();
    let data = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
    offload.put(&data, buf).unwrap();
    let mut out = [0.0f64; 8];
    offload.get(buf, &mut out).unwrap();
    assert_eq!(out, data);

    // Kernels see the buffer through its address (f2f-transported).
    assert_eq!(
        offload
            .sync(target, f2f!(sum_buffer, buf.addr(), 8))
            .unwrap(),
        36.0
    );

    // put_async / get_async (Table II's future<void> forms; synchronous
    // completion like the underlying veo_write_mem/veo_read_mem).
    let mut pf = offload.put_async(&data, buf);
    assert!(pf.test(), "put futures are immediately ready");
    pf.get().unwrap();
    let back = offload.get_async(buf, 8).get().unwrap();
    assert_eq!(back, data.to_vec());

    // copy (host-orchestrated), within one target.
    let buf2 = offload.allocate::<f64>(target, 8).unwrap();
    offload.copy(buf, buf2, 8).unwrap();
    assert_eq!(
        offload
            .sync(target, f2f!(sum_buffer, buf2.addr(), 8))
            .unwrap(),
        36.0
    );

    offload.free(buf).unwrap();
    offload.free(buf2).unwrap();
}

#[test]
fn table2_on_local_backend() {
    let o = local_offload(2, registrar);
    exercise_table2(&o, DeviceType::Generic);
    o.shutdown();
}

#[test]
fn table2_on_veo_backend() {
    let o = veo_offload(1, registrar);
    exercise_table2(&o, DeviceType::VectorEngine);
    o.shutdown();
}

#[test]
fn table2_on_dma_backend() {
    let o = dma_offload(1, registrar);
    exercise_table2(&o, DeviceType::VectorEngine);
    o.shutdown();
}

#[test]
fn copy_across_ves_is_host_orchestrated() {
    let o = dma_offload(2, registrar);
    let a = o.allocate::<u64>(NodeId(1), 4).unwrap();
    let b = o.allocate::<u64>(NodeId(2), 4).unwrap();
    o.put(&[9, 8, 7, 6], a).unwrap();
    o.copy(a, b, 4).unwrap();
    let mut out = [0u64; 4];
    o.get(b, &mut out).unwrap();
    assert_eq!(out, [9, 8, 7, 6]);
    o.shutdown();
}
