//! Fault matrix for the multi-target scheduler (`TargetPool`).
//!
//! The headline scenario kills 1 of 4 targets while a wave of pooled
//! offloads is in flight, on every fault-capable backend (VEO, DMA,
//! TCP) under the fixed seed set: every offload either completes with
//! a correct result on the target that served it or fails with
//! `TargetLost`, the pool prunes the dead target, post-kill waves run
//! entirely on the survivors, and no `PendingTable` entry leaks —
//! run twice per seed to pin the semantic fault timeline and the
//! placement decisions.
//!
//! The staged-batch scenario exercises the failover path proper: posts
//! that were still sitting in the dead target's batch accumulator (or
//! whose envelope failed to send) verifiably never reached the wire,
//! so the pool resubmits them to survivors and *all* offloads complete.

use aurora_workloads::kernels::compute_burn;
use ham::f2f;
use ham_aurora_repro::fault_scenario::{probe_expected, scenario_probe, BackendKind};
use ham_aurora_repro::{
    dma_offload_batched, dma_offload_batched_with_faults, dma_offload_with_faults,
    tcp_offload_cluster_reserve, tcp_offload_with_faults, veo_offload_with_faults, BatchConfig,
    FaultPlan, NodeId, Offload, OffloadError, RecoveryPolicy, TargetSpec, TargetState,
};
use ham_offload::backend::CommBackend;
use ham_offload::sched::{PoolFuture, SchedPolicy, TargetPool};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 42, 0xA770_57E5];
const TARGETS: u16 = 4;
const WAVE: usize = 16;

fn spawn(kind: BackendKind, plan: Arc<FaultPlan>) -> Offload {
    let reg = |b: &mut ham::RegistryBuilder| {
        b.register::<scenario_probe>();
    };
    match kind {
        BackendKind::Veo => veo_offload_with_faults(TARGETS as u8, plan, None, reg),
        BackendKind::Dma => dma_offload_with_faults(TARGETS as u8, plan, None, reg),
        BackendKind::Tcp => tcp_offload_with_faults(TARGETS, plan, reg),
    }
}

/// `(x, final_target, result)` for one collected offload.
type Outcome = (u64, u16, Result<u64, OffloadError>);

/// Submit one wave through the pool, recording where each offload was
/// *placed* (before any failover), then collect every future.
/// Returns `(placements, outcomes)`; outcomes are in posting order.
fn run_wave(pool: &TargetPool, base: u64) -> (Vec<u16>, Vec<Outcome>) {
    let mut xs = Vec::new();
    let mut futs: Vec<PoolFuture<u64>> = Vec::new();
    let mut placements = Vec::new();
    for i in 0..WAVE {
        let x = base + i as u64;
        let f = pool.submit(f2f!(scenario_probe, x)).expect("submit");
        placements.push(f.target().0);
        xs.push(x);
        futs.push(f);
    }
    let mut outcomes = Vec::new();
    while !futs.is_empty() {
        let i = pool.wait_any(&mut futs).expect("futures pending");
        let x = xs.swap_remove(i);
        let f = futs.swap_remove(i);
        let served_by = f.target().0;
        outcomes.push((x, served_by, pool.get(f)));
    }
    outcomes.sort_unstable_by_key(|(x, _, _)| *x);
    (placements, outcomes)
}

/// Canonical per-run record compared across the determinism replay.
#[derive(Debug, PartialEq)]
struct PoolRun {
    wave0: Vec<(u64, u16)>,
    wave1_placements: Vec<u16>,
    wave1_ok: usize,
    wave1_lost: usize,
    wave2: Vec<(u64, u16)>,
    healthy_after: Vec<u16>,
    timeline: Vec<String>,
}

fn kill_one_of_four_once(kind: BackendKind, policy: SchedPolicy, seed: u64) -> PoolRun {
    let plan = FaultPlan::builder(seed).build();
    let o = spawn(kind, Arc::clone(&plan));
    let nodes: Vec<NodeId> = (1..=TARGETS).map(NodeId).collect();
    let pool = o.pool_with(&nodes, policy).expect("pool");
    let victim = NodeId(1 + (seed % TARGETS as u64) as u16);
    let label = format!("{} seed {seed}", kind.name());

    // Wave 0: fault-free. Placement spreads evenly and every offload
    // completes on the target that served it.
    let (placements0, wave0) = run_wave(&pool, 0);
    for t in 1..=TARGETS {
        assert_eq!(
            placements0.iter().filter(|&&p| p == t).count(),
            WAVE / TARGETS as usize,
            "{label}: wave 0 placement skew: {placements0:?}"
        );
    }
    let wave0: Vec<(u64, u16)> = wave0
        .into_iter()
        .map(|(x, t, r)| {
            assert_eq!(r.expect("wave 0 ok"), probe_expected(x, t), "{label}");
            (x, t)
        })
        .collect();

    // Wave 1: kill the victim while the wave is in flight (posted but
    // not collected).
    let mut xs = Vec::new();
    let mut futs = Vec::new();
    let mut wave1_placements = Vec::new();
    for i in 0..WAVE {
        let x = 100 + i as u64;
        let f = pool.submit(f2f!(scenario_probe, x)).expect("submit");
        wave1_placements.push(f.target().0);
        xs.push(x);
        futs.push(f);
    }
    o.kill_target(victim).expect("kill_target");
    let mut wave1_ok = 0;
    let mut wave1_lost = 0;
    while !futs.is_empty() {
        let i = pool.wait_any(&mut futs).expect("futures pending");
        let x = xs.swap_remove(i);
        let f = futs.swap_remove(i);
        let placed = wave1_placements[(x - 100) as usize];
        let t = f.target().0;
        match pool.get(f) {
            Ok(v) => {
                assert_eq!(v, probe_expected(x, t), "{label}: wave 1 value");
                wave1_ok += 1;
            }
            Err(OffloadError::TargetLost(n)) => {
                assert_eq!(n, victim, "{label}: lost to the wrong target");
                assert_eq!(placed, victim.0, "{label}: survivor offload lost");
                wave1_lost += 1;
            }
            Err(e) => panic!("{label}: unexpected wave 1 error: {e}"),
        }
    }
    assert_eq!(wave1_ok + wave1_lost, WAVE, "{label}: wave 1 accounting");

    // Pin the death onto the books before the next wave: a pinned probe
    // rides the dying channel into its eviction (or is refused outright
    // once the eviction is latched), so wave 2's prune is
    // deterministic. A last-gasp completion just loops again.
    while o
        .backend()
        .channel(victim)
        .expect("victim channel")
        .eviction()
        .is_none()
    {
        match pool.submit_to(victim, f2f!(scenario_probe, 999)) {
            Ok(f) => {
                let _ = pool.get(f);
            }
            Err(_) => std::thread::yield_now(),
        }
    }
    let healthy_after: Vec<u16> = pool.healthy().iter().map(|n| n.0).collect();
    assert!(
        !healthy_after.contains(&victim.0),
        "{label}: victim still pooled"
    );
    assert_eq!(healthy_after.len(), TARGETS as usize - 1, "{label}");

    // Wave 2: survivors only, everything completes.
    let (placements2, wave2) = run_wave(&pool, 200);
    assert!(
        placements2.iter().all(|p| *p != victim.0),
        "{label}: wave 2 placed on the dead target: {placements2:?}"
    );
    let wave2: Vec<(u64, u16)> = wave2
        .into_iter()
        .map(|(x, t, r)| {
            assert_eq!(r.expect("wave 2 ok"), probe_expected(x, t), "{label}");
            (x, t)
        })
        .collect();

    // Zero leaked pending entries anywhere — dead target included.
    for &n in &nodes {
        assert_eq!(
            o.in_flight(n).unwrap_or(0),
            0,
            "{label}: leaked pending entries on t{}",
            n.0
        );
    }

    let timeline: Vec<String> = plan
        .semantic_events()
        .iter()
        .map(|e| format!("{:?}/{} {:?}", e.site, e.actor, e.kind))
        .collect();
    o.shutdown();
    PoolRun {
        wave0,
        wave1_placements,
        wave1_ok,
        wave1_lost,
        wave2,
        healthy_after,
        timeline,
    }
}

/// The kill-wave's ok/lost split can race the victim's last flag fetch,
/// so the replay comparison pins everything that must be deterministic
/// (placements, fault timeline, fault-free waves, the pruned set) and
/// only requires the racy split to stay fully accounted.
fn pool_kill_one_of_four(kind: BackendKind, policy: SchedPolicy) {
    for seed in SEEDS {
        let a = kill_one_of_four_once(kind, policy, seed);
        let b = kill_one_of_four_once(kind, policy, seed);
        let label = format!("{} seed {seed}", kind.name());
        assert_eq!(a.timeline, b.timeline, "{label}: fault timeline replays");
        assert_eq!(a.wave0, b.wave0, "{label}: fault-free wave replays");
        assert_eq!(
            a.wave1_placements, b.wave1_placements,
            "{label}: kill-wave placement replays"
        );
        assert_eq!(a.wave2, b.wave2, "{label}: survivor wave replays");
        assert_eq!(a.healthy_after, b.healthy_after, "{label}");
        assert!(a.timeline.len() == 1, "{label}: one kill: {:?}", a.timeline);
    }
}

#[test]
fn pool_kill_one_of_four_veo() {
    pool_kill_one_of_four(BackendKind::Veo, SchedPolicy::LeastLoaded);
}

#[test]
fn pool_kill_one_of_four_dma() {
    pool_kill_one_of_four(BackendKind::Dma, SchedPolicy::LeastLoaded);
}

#[test]
fn pool_kill_one_of_four_tcp() {
    // TCP is a push transport: its receiver threads retire completions
    // concurrently with submission, so load-based placement would race.
    // Round-robin keeps the placement record deterministic.
    pool_kill_one_of_four(BackendKind::Tcp, SchedPolicy::RoundRobin);
}

/// The failover path proper: offloads staged in the dead target's batch
/// accumulator never reached the wire, so the pool must resubmit them
/// to survivors — **all** offloads complete, none is lost.
///
/// TCP makes this deterministic: `kill_target` shuts the host-side
/// socket down synchronously, so the flush of the victim's staged
/// envelope fails in `send_frame`, marks every member unsent, and the
/// pool replays them. (The equivalent core-level transitions are
/// unit-tested in `chan::core`; this pins the end-to-end behaviour.)
#[test]
fn staged_batch_offloads_fail_over_to_survivors() {
    for seed in [3u64, 13, 42] {
        let reg = |b: &mut ham::RegistryBuilder| {
            b.register::<scenario_probe>();
        };
        let o = Offload::new(ham_backend_tcp::TcpBackend::spawn_batched(
            TARGETS,
            BatchConfig::up_to(64),
            reg,
        ));
        let nodes: Vec<NodeId> = (1..=TARGETS).map(NodeId).collect();
        let pool = o.pool_with(&nodes, SchedPolicy::LeastLoaded).expect("pool");
        let victim = NodeId(1 + (seed % TARGETS as u64) as u16);
        let label = format!("tcp staged seed {seed}");

        // 16 submits spread 4 per target — all staged (watermark 64),
        // nothing on the wire yet. Staged members count toward
        // in-flight, so LeastLoaded is deterministic even on a push
        // transport here.
        let mut futs = Vec::new();
        let mut xs = Vec::new();
        let mut placements = Vec::new();
        for i in 0..WAVE {
            let x = seed * 1000 + i as u64;
            let f = pool.submit(f2f!(scenario_probe, x)).expect("submit");
            placements.push(f.target().0);
            xs.push(x);
            futs.push(f);
        }
        for t in 1..=TARGETS {
            assert_eq!(
                placements.iter().filter(|&&p| p == t).count(),
                WAVE / TARGETS as usize,
                "{label}: staged placement skew: {placements:?}"
            );
        }
        o.kill_target(victim).expect("kill_target");

        // Collect everything: the victim's staged members fail to send,
        // are marked unsent, and get replayed on survivors.
        let mut resubmitted = 0;
        while !futs.is_empty() {
            let i = pool.wait_any(&mut futs).expect("futures pending");
            let x = xs.swap_remove(i);
            let f = futs.swap_remove(i);
            let t = f.target().0;
            if f.resubmits() > 0 {
                resubmitted += 1;
                assert_ne!(t, victim.0, "{label}: resubmitted back to the dead target");
            }
            let v = pool
                .get(f)
                .unwrap_or_else(|e| panic!("{label}: offload x={x} lost: {e}"));
            assert_eq!(v, probe_expected(x, t), "{label}: value/target mismatch");
        }
        assert_eq!(
            resubmitted,
            WAVE / TARGETS as usize,
            "{label}: exactly the victim's staged members fail over"
        );
        let healthy: Vec<u16> = pool.healthy().iter().map(|n| n.0).collect();
        assert!(!healthy.contains(&victim.0), "{label}");
        for &n in &nodes {
            assert_eq!(o.in_flight(n).unwrap_or(0), 0, "{label}: leak on t{}", n.0);
        }
        o.shutdown();
    }
}

/// Work stealing under a kill: batch carriers engage the device
/// runtime's worker lanes (an uneven member mix forces idle lanes to
/// steal), a target dies with its members still staged, and the pool
/// fails them over — every offload completes, the lanes recorded
/// steals, and nothing leaks.
#[test]
fn lanes_steal_while_a_target_dies() {
    const DEPTH: usize = 48; // 12 members per target: > 8 lanes each
    for seed in [3u64, 13, 42] {
        let plan = FaultPlan::builder(seed).build();
        let o = dma_offload_batched_with_faults(
            TARGETS as u8,
            BatchConfig::up_to(64),
            plan,
            None,
            aurora_workloads::register_all,
        );
        let nodes: Vec<NodeId> = (1..=TARGETS).map(NodeId).collect();
        let pool = o.pool_with(&nodes, SchedPolicy::RoundRobin).expect("pool");
        let victim = NodeId(1 + (seed % TARGETS as u64) as u16);
        let label = format!("dma lanes seed {seed}");

        // Round-robin staging puts one heavy member at the head of each
        // target's envelope; the light members queued behind it on the
        // same lane must be stolen by idle peers.
        let mut futs = Vec::new();
        for i in 0..DEPTH {
            let flops = if i < TARGETS as usize {
                5_000_000u64
            } else {
                200_000
            };
            futs.push(pool.submit(f2f!(compute_burn, flops)).expect("submit"));
        }
        let placements: Vec<u16> = futs.iter().map(|f| f.target().0).collect();
        let staged_on_victim = placements.iter().filter(|&&p| p == victim.0).count();
        assert_eq!(staged_on_victim, DEPTH / TARGETS as usize, "{label}");
        o.kill_target(victim).expect("kill_target");

        // The victim's envelope either fails in `send_frame` (members
        // verifiably unsent → they fail over and complete elsewhere) or
        // lands in the dead process's memory (members lost) — the shm
        // write can race the kill either way, but the accounting must
        // close: every member resolves, and only victim-placed ones may
        // be lost.
        let mut resubmitted = 0;
        let mut lost = 0;
        let mut idx: Vec<usize> = (0..DEPTH).collect();
        while !futs.is_empty() {
            let i = pool.wait_any(&mut futs).expect("futures pending");
            let placed = placements[idx.swap_remove(i)];
            let f = futs.swap_remove(i);
            if f.resubmits() > 0 {
                resubmitted += 1;
            }
            let t = f.target().0;
            match pool.get(f) {
                Ok(v) => {
                    assert_eq!(v, t, "{label}: compute_burn reports its node");
                    assert_ne!(t, victim.0, "{label}: completed on the dead target");
                }
                Err(OffloadError::TargetLost(n)) => {
                    assert_eq!(n, victim, "{label}: lost to the wrong target");
                    assert_eq!(placed, victim.0, "{label}: survivor member lost");
                    lost += 1;
                }
                Err(e) => panic!("{label}: unexpected error: {e}"),
            }
        }
        assert_eq!(
            resubmitted + lost,
            DEPTH / TARGETS as usize,
            "{label}: the victim's staged members fail over or fail loudly"
        );
        let snap = o.metrics_snapshot();
        assert!(
            snap.steals > 0,
            "{label}: heavy-headed 12-member carriers on 8 lanes must steal"
        );
        assert_eq!(
            snap.lanes.iter().map(|l| l.tasks).sum::<u64>(),
            (DEPTH - lost) as u64,
            "{label}: every completed member executed on a lane"
        );
        for &n in &nodes {
            assert_eq!(o.in_flight(n).unwrap_or(0), 0, "{label}: leak on t{}", n.0);
        }
        o.shutdown();
    }
}

/// Staged-member migration: a *healthy but slow* target (its slot rings
/// pinned full, so its accumulator cannot flush) holds staged members
/// while peers sit idle. `TargetPool::rebalance` reclaims them —
/// provably unsent — and the pool replays them elsewhere. The donor is
/// never evicted, every offload completes, and no pending entry leaks,
/// across the full seed set.
#[test]
fn staged_members_migrate_off_a_slow_target() {
    for seed in SEEDS {
        let reg = |b: &mut ham::RegistryBuilder| {
            b.register::<scenario_probe>();
        };
        let o = dma_offload_batched(TARGETS as u8, BatchConfig::up_to(64), reg);
        let nodes: Vec<NodeId> = (1..=TARGETS).map(NodeId).collect();
        let pool = o.pool_with(&nodes, SchedPolicy::RoundRobin).expect("pool");
        let donor = NodeId(1 + (seed % TARGETS as u64) as u16);
        let label = format!("dma migration seed {seed}");

        // Pin the donor's slot rings full with reservations that never
        // complete: its staged envelope cannot flush until they free —
        // the deterministic stand-in for a target digesting slow work.
        let donor_chan = o.backend().channel(donor).expect("donor channel");
        let stuck: Vec<u64> = (0..8)
            .map(
                |_| match donor_chan.try_reserve(false, 0, aurora_sim_core::SimTime::ZERO, 0) {
                    ham_offload::chan::Reserve::Reserved(r) => r.seq,
                    other => panic!("{label}: pin reservation refused: {other:?}"),
                },
            )
            .collect();

        // One round-robin wave: WAVE/TARGETS members staged per target.
        let mut xs = Vec::new();
        let mut futs = Vec::new();
        let mut donor_futs = Vec::new();
        let mut donor_xs = Vec::new();
        for i in 0..WAVE {
            let x = seed * 1000 + i as u64;
            let f = pool.submit(f2f!(scenario_probe, x)).expect("submit");
            if f.target() == donor {
                donor_xs.push(x);
                donor_futs.push(f);
            } else {
                xs.push(x);
                futs.push(f);
            }
        }
        let staged = WAVE / TARGETS as usize;
        assert_eq!(donor_futs.len(), staged, "{label}: placement skew");
        assert_eq!(donor_chan.staged_len(), staged, "{label}");

        // Drain the peers first so they go idle — migration needs a
        // recipient that will serve the reclaimed members *now*. (A
        // wait round may already migrate some donor members itself.)
        for (x, r) in xs.iter().zip(pool.wait_all(futs)) {
            r.unwrap_or_else(|e| panic!("{label}: peer offload x={x} lost: {e}"));
        }

        // Rebalance until the donor's accumulator is empty: each call
        // reclaims half the staged tail (rounded up), so this converges
        // in a few steps and the donor is never touched by a flush.
        while donor_chan.staged_len() > 0 {
            let m = pool.rebalance();
            assert!(m > 0, "{label}: rebalance stalled with work staged");
        }

        // Free the pinned slots (the donor recovers) and collect the
        // migrated members: each failed over exactly once and completed
        // with a correct result wherever it landed.
        for s in stuck {
            donor_chan.cancel(s);
        }
        while !donor_futs.is_empty() {
            let i = pool.wait_any(&mut donor_futs).expect("futures pending");
            let x = donor_xs.swap_remove(i);
            let f = donor_futs.swap_remove(i);
            assert!(f.resubmits() > 0, "{label}: member x={x} was not migrated");
            let t = f.target().0;
            let v = pool
                .get(f)
                .unwrap_or_else(|e| panic!("{label}: migrated x={x} lost: {e}"));
            assert_eq!(v, probe_expected(x, t), "{label}: value/target mismatch");
        }

        // The donor was slow, not dead: still pooled, nothing leaked.
        let healthy: Vec<u16> = pool.healthy().iter().map(|n| n.0).collect();
        assert_eq!(healthy, (1..=TARGETS).collect::<Vec<_>>(), "{label}");
        for &n in &nodes {
            assert_eq!(o.in_flight(n).unwrap_or(0), 0, "{label}: leak on t{}", n.0);
        }
        o.shutdown();
    }
}

/// Regression for a rare (~1/40) `killing_every_target_empties_the_pool`
/// flake: `kill_target` used to only tear the sockets down and leave
/// the eviction latch to the TCP reader thread's EOF handling, so a
/// caller could observe every in-flight future resolved (send-side
/// errors fail them first) while `eviction()` was still unset for a
/// scheduling beat — `prune` kept the dead target and `is_empty()`
/// reported a live pool. `kill_target` now latches the eviction
/// before returning in non-cluster mode, so the post-condition is
/// deterministic: no sleeps or yields here, the eviction must be
/// visible the instant the call returns, every round, within a hard
/// in-test deadline.
#[test]
fn kill_target_latches_eviction_before_returning() {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    for round in 0..24u64 {
        let plan = FaultPlan::builder(round).build();
        let o = spawn(BackendKind::Tcp, plan);
        let nodes: Vec<NodeId> = (1..=TARGETS).map(NodeId).collect();
        let pool = o.pool_with(&nodes, SchedPolicy::RoundRobin).expect("pool");
        for &n in &nodes {
            o.kill_target(n).expect("kill");
            assert!(
                o.backend()
                    .channel(n)
                    .expect("channel")
                    .eviction()
                    .is_some(),
                "round {round}: kill_target returned before latching t{}",
                n.0
            );
        }
        assert!(pool.is_empty(), "round {round}: dead targets must prune");
        o.shutdown();
        assert!(
            std::time::Instant::now() < deadline,
            "in-test deadline exceeded at round {round}"
        );
    }
}

/// Losing *every* target empties the pool: queued offloads surface
/// their error and later submissions fail with the pool-empty error
/// instead of hanging.
#[test]
fn killing_every_target_empties_the_pool() {
    let plan = FaultPlan::builder(7).build();
    let o = spawn(BackendKind::Tcp, plan);
    let nodes: Vec<NodeId> = (1..=TARGETS).map(NodeId).collect();
    let pool = o.pool_with(&nodes, SchedPolicy::RoundRobin).expect("pool");
    let futs: Vec<PoolFuture<u64>> = (0..8)
        .map(|i| pool.submit(f2f!(scenario_probe, i)).expect("submit"))
        .collect();
    for &n in &nodes {
        o.kill_target(n).expect("kill");
    }
    for r in pool.wait_all(futs) {
        // Every queued offload resolves — correct last-gasp results are
        // fine, hangs and leaks are not.
        if let Err(e) = r {
            assert!(
                matches!(e, OffloadError::TargetLost(_) | OffloadError::Backend(_)),
                "unexpected error: {e}"
            );
        }
    }
    assert!(pool.is_empty(), "all targets dead");
    let err = pool.submit(f2f!(scenario_probe, 99)).unwrap_err();
    assert!(
        matches!(err, OffloadError::TargetLost(_) | OffloadError::Backend(_)),
        "{err}"
    );
    for &n in &nodes {
        assert_eq!(o.in_flight(n).unwrap_or(0), 0, "leak on t{}", n.0);
    }
    o.shutdown();
}

// ---------------------------------------------------------------------
// Membership churn: dynamic add/remove on a running pool, background
// liveness probing, and the all-degraded placement bound — all against
// real loopback-TCP cluster targets.
// ---------------------------------------------------------------------

/// Cluster-TCP health transitions ride reader/supervisor threads, so
/// the churn assertions await them under a hard deadline instead of
/// sleeping blind.
fn wait_until(limit: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < limit {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    cond()
}

fn cluster_reg(b: &mut ham::RegistryBuilder) {
    b.register::<scenario_probe>();
}

/// Canonical per-run record for the add-target replay comparison:
/// everything about the churn timeline that must be deterministic.
#[derive(Debug, PartialEq)]
struct ChurnRun {
    /// `(node, fresh)` from the joiner's discovery announce.
    announce: (u16, bool),
    /// Placement sequence across the whole run (pre- and post-join).
    placements: Vec<u16>,
    /// `(x, served_by)` for every offload, sorted by `x`.
    outcomes: Vec<(u64, u16)>,
    healthy: Vec<u16>,
}

/// One add-target-mid-flight run: a 3-target cluster with one vacant
/// reserve slot, a seeded number of offloads already in flight, then
/// the PR 8 discovery handshake activates the reserve slot and the
/// pool admits it — the joiner starts serving the remainder of the
/// run, every offload completes with a correct result, and the vacant
/// slot was never placeable before its handshake ran.
fn add_target_mid_flight_once(seed: u64) -> ChurnRun {
    let (o, be) = tcp_offload_cluster_reserve(
        &[TargetSpec::default(); 3],
        &[TargetSpec::default()],
        RecoveryPolicy::replay_only(4),
        FaultPlan::none(),
        cluster_reg,
    );
    let nodes: Vec<NodeId> = (1..=3).map(NodeId).collect();
    let pool = o.pool_with(&nodes, SchedPolicy::RoundRobin).expect("pool");
    let joiner = NodeId(4);
    let label = format!("churn add seed {seed}");

    // A vacant reserve slot is not a target yet: the pool refuses it.
    assert!(!be.is_joined(joiner), "{label}: reserve slot joined early");
    assert!(
        pool.add_target(joiner).is_err(),
        "{label}: admitted a slot whose handshake never ran"
    );

    let join_at = 4 + (seed % 8) as usize;
    let total = 2 * WAVE;
    let mut xs = Vec::new();
    let mut futs = Vec::new();
    let mut placements = Vec::new();
    for i in 0..join_at {
        let x = seed * 1000 + i as u64;
        let f = pool.submit(f2f!(scenario_probe, x)).expect("submit");
        placements.push(f.target().0);
        xs.push(x);
        futs.push(f);
    }
    // Mid-flight join: discovery handshake on the vacant slot, then
    // pool admission. Both are idempotence-checked.
    let announce = be
        .join_target(joiner)
        .unwrap_or_else(|e| panic!("{label}: join failed: {e}"));
    assert_eq!(announce.node, joiner.0, "{label}: announce names the slot");
    assert!(
        announce.watermark.is_none(),
        "{label}: a fresh joiner has no replay watermark"
    );
    assert!(be.join_target(joiner).is_err(), "{label}: double join");
    assert!(
        pool.add_target(joiner).expect("admit joiner"),
        "{label}: roster must grow"
    );
    assert!(
        !pool.add_target(joiner).expect("re-admit joiner"),
        "{label}: re-admitting a member is a no-op"
    );
    for i in join_at..total {
        let x = seed * 1000 + i as u64;
        let f = pool.submit(f2f!(scenario_probe, x)).expect("submit");
        placements.push(f.target().0);
        xs.push(x);
        futs.push(f);
    }
    assert!(
        placements[..join_at].iter().all(|&p| p != joiner.0),
        "{label}: placed on the joiner before it joined: {placements:?}"
    );
    assert!(
        placements[join_at..].iter().any(|&p| p == joiner.0),
        "{label}: the joiner never served work: {placements:?}"
    );

    let mut outcomes = Vec::new();
    while !futs.is_empty() {
        let i = pool.wait_any(&mut futs).expect("futures pending");
        let x = xs.swap_remove(i);
        let f = futs.swap_remove(i);
        let t = f.target().0;
        let v = pool
            .get(f)
            .unwrap_or_else(|e| panic!("{label}: offload x={x} lost: {e}"));
        assert_eq!(v, probe_expected(x, t), "{label}: value/target mismatch");
        outcomes.push((x, t));
    }
    outcomes.sort_unstable();
    let healthy: Vec<u16> = pool.healthy().iter().map(|n| n.0).collect();
    assert_eq!(healthy, vec![1, 2, 3, 4], "{label}: joiner pooled");
    assert_eq!(
        o.metrics_snapshot().member_joins,
        1,
        "{label}: join counter"
    );
    for n in 1..=4u16 {
        assert_eq!(
            o.in_flight(NodeId(n)).unwrap_or(0),
            0,
            "{label}: leak on t{n}"
        );
    }
    o.shutdown();
    ChurnRun {
        announce: (announce.node, announce.watermark.is_none()),
        placements,
        outcomes,
        healthy,
    }
}

/// Add-target-mid-flight matrix: the full seed set, each run twice —
/// the churn timeline (join point, placements, outcomes, roster) must
/// replay bit-identically.
#[test]
fn membership_add_target_mid_flight_matrix() {
    let deadline = Instant::now() + Duration::from_secs(240);
    for seed in SEEDS {
        let a = add_target_mid_flight_once(seed);
        let b = add_target_mid_flight_once(seed);
        assert_eq!(a, b, "seed {seed}: membership churn timeline replays");
        assert!(
            Instant::now() < deadline,
            "in-test deadline exceeded at seed {seed}"
        );
    }
}

/// Retiring a member with staged work: `remove_target` reclaims the
/// provably-unsent members from the victim's batch accumulator (the
/// same staged-tail migration `rebalance` uses), the pool replays
/// exactly those members on survivors, and the victim — alive, just
/// retired — stops receiving placements. Exactly-once throughout:
/// every offload completes once with a correct result, nothing leaks.
#[test]
fn membership_remove_target_reclaims_staged_work() {
    for seed in SEEDS {
        let o = Offload::new(ham_backend_tcp::TcpBackend::spawn_batched(
            TARGETS,
            BatchConfig::up_to(64),
            cluster_reg,
        ));
        let nodes: Vec<NodeId> = (1..=TARGETS).map(NodeId).collect();
        let pool = o.pool_with(&nodes, SchedPolicy::LeastLoaded).expect("pool");
        let victim = NodeId(1 + (seed % TARGETS as u64) as u16);
        let label = format!("churn remove seed {seed}");

        // One staged wave, 4 members per target (watermark 64: nothing
        // on the wire). Staged members count toward in-flight, so
        // LeastLoaded is deterministic here.
        let mut xs = Vec::new();
        let mut futs = Vec::new();
        for i in 0..WAVE {
            let x = seed * 1000 + i as u64;
            let f = pool.submit(f2f!(scenario_probe, x)).expect("submit");
            xs.push((x, f.target().0));
            futs.push(f);
        }
        let staged = WAVE / TARGETS as usize;
        let reclaimed = pool.remove_target(victim).expect("remove_target");
        assert_eq!(
            reclaimed, staged,
            "{label}: the victim's staged members are reclaimed"
        );
        assert!(
            matches!(pool.remove_target(victim), Err(OffloadError::BadNode(_))),
            "{label}: double remove must surface BadNode"
        );
        let healthy: Vec<u16> = pool.healthy().iter().map(|n| n.0).collect();
        assert!(!healthy.contains(&victim.0), "{label}: victim still pooled");
        assert_eq!(healthy.len(), TARGETS as usize - 1, "{label}");

        // Collect everything: exactly the reclaimed members fail over,
        // and none lands back on the retiree.
        let mut resubmitted = 0;
        while !futs.is_empty() {
            let i = pool.wait_any(&mut futs).expect("futures pending");
            let (x, placed) = xs.swap_remove(i);
            let f = futs.swap_remove(i);
            let t = f.target().0;
            if f.resubmits() > 0 {
                resubmitted += 1;
                assert_eq!(placed, victim.0, "{label}: survivor member migrated");
                assert_ne!(t, victim.0, "{label}: migrated back onto the retiree");
            }
            let v = pool
                .get(f)
                .unwrap_or_else(|e| panic!("{label}: offload x={x} lost: {e}"));
            assert_eq!(v, probe_expected(x, t), "{label}: value/target mismatch");
        }
        assert_eq!(
            resubmitted, staged,
            "{label}: exactly the reclaimed members fail over"
        );

        // The pool keeps serving on the survivors only.
        let (placements, wave) = run_wave(&pool, seed * 1000 + 500);
        assert!(
            placements.iter().all(|&p| p != victim.0),
            "{label}: placed on the retiree: {placements:?}"
        );
        for (x, t, r) in wave {
            assert_eq!(
                r.expect("post-removal wave"),
                probe_expected(x, t),
                "{label}"
            );
        }
        assert_eq!(
            o.metrics_snapshot().member_leaves,
            1,
            "{label}: leave counter"
        );
        for &n in &nodes {
            assert_eq!(o.in_flight(n).unwrap_or(0), 0, "{label}: leak on t{}", n.0);
        }
        o.shutdown();
    }
}

/// A flapping target under seeded disconnects: the background prober
/// records `ProbeMiss` streaks while the link is blacked out, placement
/// deprioritizes the flapper *before* it exhausts its reconnect budget,
/// and once the blackout lifts the prober drives the `Degraded → healed`
/// edge — the flapper rejoins the rotation without any caller touching
/// the channel.
#[test]
fn flapping_target_probed_deprioritized_then_heals() {
    for seed in [3u64, 13, 42] {
        let (o, be) = tcp_offload_cluster_reserve(
            &[TargetSpec::default(); 2],
            &[],
            RecoveryPolicy::replay_only(200),
            FaultPlan::none(),
            cluster_reg,
        );
        let nodes = [NodeId(1), NodeId(2)];
        let pool = o.pool_with(&nodes, SchedPolicy::RoundRobin).expect("pool");
        let victim = nodes[(seed % 2) as usize];
        let survivor = nodes[1 - (seed % 2) as usize];
        let label = format!("churn flap seed {seed}");
        pool.start_prober(be.probe_config());

        // Flap: kill the sockets behind a reconnect blackout. The
        // supervisor burns budgeted attempts against the wall while the
        // prober racks up misses.
        be.block_reconnect(victim, true).expect("block");
        o.kill_target(victim).expect("kill");
        assert!(
            wait_until(Duration::from_secs(30), || {
                let snap = be.metrics().snapshot();
                snap.probe_misses >= 2
                    && be.metrics().health().state(victim.0) == Some(TargetState::Degraded)
            }),
            "{label}: prober never recorded the flapper's misses"
        );

        // Placement avoids the flapper while its miss streak stands —
        // it is still pooled (not evicted), just deprioritized.
        let (placements, wave) = run_wave(&pool, seed * 1000);
        assert!(
            placements.iter().all(|&p| p == survivor.0),
            "{label}: placed on the flapper mid-blackout: {placements:?}"
        );
        for (x, t, r) in wave {
            assert_eq!(r.expect("blackout wave"), probe_expected(x, t), "{label}");
        }
        let healthy: Vec<u16> = pool.healthy().iter().map(|n| n.0).collect();
        assert!(
            healthy.contains(&victim.0),
            "{label}: flapper evicted instead of deprioritized"
        );

        // Heal: lift the blackout. The supervisor reconnects within its
        // budget, the prober's next answered round clears the streak and
        // flips the health registry back — no caller-side poll.
        be.block_reconnect(victim, false).expect("unblock");
        assert!(
            wait_until(Duration::from_secs(30), || {
                be.metrics().health().state(victim.0) == Some(TargetState::Healthy)
            }),
            "{label}: flapper never healed after the blackout lifted"
        );
        assert!(
            wait_until(Duration::from_secs(30), || {
                pool.submit(f2f!(scenario_probe, 7777))
                    .is_ok_and(|f| f.target() == victim && pool.get(f).is_ok())
            }),
            "{label}: the healed flapper never rejoined the rotation"
        );
        let rounds = pool.stop_prober().expect("prober was running");
        assert!(rounds >= 1, "{label}: prober ran no rounds");
        let snap = be.metrics().snapshot();
        assert!(snap.probes >= 1, "{label}: no answered probes recorded");
        assert!(snap.probe_misses >= 2, "{label}: no misses recorded");
        for &n in &nodes {
            assert_eq!(o.in_flight(n).unwrap_or(0), 0, "{label}: leak on t{}", n.0);
        }
        o.shutdown();
    }
}

/// End-to-end pin for the all-degraded placement livelock, phase 1:
/// a **permanent** outage. Every pooled target's link is blacked out
/// with a tight reconnect budget and tiny credit limits, and `submit`
/// is called until the credits are gone — the next call lands in the
/// blocking `pick` loop that used to spin forever. It must exit with
/// a bounded error instead ([`OffloadError::Timeout`] when the budget
/// outlasts the wait, or the pool-empty error once the supervisors
/// give up and evict — the deterministic `Timeout` split is pinned at
/// the unit level in `sched::pool`). Every parked future resolves.
#[test]
fn all_degraded_cluster_submit_is_bounded_under_permanent_outage() {
    let deadline = Instant::now() + Duration::from_secs(60);
    let spec = TargetSpec {
        credit_limit: 2,
        ..TargetSpec::default()
    };
    let (o, be) = tcp_offload_cluster_reserve(
        &[spec; 2],
        &[],
        RecoveryPolicy::replay_only(4),
        FaultPlan::none(),
        cluster_reg,
    );
    let nodes = [NodeId(1), NodeId(2)];
    let pool = o.pool_with(&nodes, SchedPolicy::RoundRobin).expect("pool");
    for &n in &nodes {
        be.block_reconnect(n, true).expect("block");
        o.kill_target(n).expect("kill");
    }
    assert!(
        wait_until(Duration::from_secs(30), || {
            nodes.iter().all(|n| {
                matches!(
                    be.metrics().health().state(n.0),
                    Some(TargetState::Degraded | TargetState::Evicted)
                )
            })
        }),
        "both links must degrade"
    );

    // A submit racing the degrade can still reserve and park (its send
    // fails, recovery holds it for replay); once the channels are
    // degraded they refuse reservations, so the submit blocks in `pick`
    // with every target degraded — the livelock regression — and must
    // error out instead of spinning.
    let mut parked = Vec::new();
    let err = loop {
        match pool.submit(f2f!(scenario_probe, parked.len() as u64)) {
            Ok(f) => parked.push(f),
            Err(e) => break e,
        }
        assert!(
            Instant::now() < deadline,
            "submit never surfaced the outage"
        );
    };
    assert!(
        matches!(
            err,
            OffloadError::Timeout | OffloadError::TargetLost(_) | OffloadError::Backend(_)
        ),
        "unexpected all-degraded error: {err}"
    );
    assert!(Instant::now() < deadline, "in-test deadline exceeded");

    // Nothing hangs on collection either: the parked work fails loudly
    // once its target is evicted (a last-gasp completion is fine).
    for r in pool.wait_all(parked) {
        if let Err(e) = r {
            assert!(
                matches!(e, OffloadError::TargetLost(_) | OffloadError::Backend(_)),
                "parked future surfaced {e}"
            );
        }
    }
    for &n in &nodes {
        assert_eq!(o.in_flight(n).unwrap_or(0), 0, "leak on t{}", n.0);
    }
    o.shutdown();
}

/// Phase 2 of the livelock pin: a **transient** outage. A degraded
/// channel refuses new reservations (`Reserve::Full`), so a submit
/// issued while every link is down blocks in `pick`'s bounded
/// all-degraded stall; when the blackout lifts mid-wait, the link
/// supervisors resume the sessions and the blocked submit proceeds to
/// placement and completion — no caller ever touched the channel, and
/// the health registry flips back to `Healthy` on its own.
#[test]
fn all_degraded_cluster_heals_and_unblocks_placement() {
    let (o, be) = tcp_offload_cluster_reserve(
        &[TargetSpec::default(); 2],
        &[],
        RecoveryPolicy::replay_only(200),
        FaultPlan::none(),
        cluster_reg,
    );
    let nodes = [NodeId(1), NodeId(2)];
    let pool = o.pool_with(&nodes, SchedPolicy::RoundRobin).expect("pool");

    // Sanity: the pool serves before the outage.
    let f = pool.submit(f2f!(scenario_probe, 1000)).expect("submit");
    let t = f.target().0;
    assert_eq!(pool.get(f).expect("pre-outage"), probe_expected(1000, t));

    for &n in &nodes {
        be.block_reconnect(n, true).expect("block");
        o.kill_target(n).expect("kill");
    }
    assert!(
        wait_until(Duration::from_secs(30), || {
            nodes
                .iter()
                .all(|n| be.metrics().health().state(n.0) == Some(TargetState::Degraded))
        }),
        "both links must degrade"
    );

    // Lift the blackout from a helper thread while the submit below is
    // blocked in `pick` with every target degraded. The 150 ms window
    // burns ~10 of the 200 budgeted reconnect attempts (500 µs backoff
    // doubling to a 20 ms cap), so the supervisors are still retrying
    // when the listeners return.
    let unblock = {
        let be = Arc::clone(&be);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            for n in [NodeId(1), NodeId(2)] {
                be.block_reconnect(n, false).expect("unblock");
            }
        })
    };
    let f = pool
        .submit(f2f!(scenario_probe, 4))
        .expect("submit across the heal");
    let t = f.target().0;
    assert_eq!(
        pool.get(f).expect("post-heal submit completes"),
        probe_expected(4, t)
    );
    unblock.join().expect("unblock thread");
    assert!(
        wait_until(Duration::from_secs(30), || {
            nodes
                .iter()
                .all(|n| be.metrics().health().state(n.0) == Some(TargetState::Healthy))
        }),
        "links must heal once the blackout lifts"
    );
    assert!(
        be.metrics().snapshot().reconnects >= 2,
        "both sessions must resume"
    );
    for &n in &nodes {
        assert_eq!(o.in_flight(n).unwrap_or(0), 0, "leak on t{}", n.0);
    }
    o.shutdown();
}
