//! Failure injection: the framework must fail loudly and recoverably,
//! never corrupt state.

use aurora_workloads::kernels::{echo, whoami};
use ham::f2f;
use ham_aurora_repro::{dma_offload, tcp_offload, veo_offload, NodeId, OffloadError};
use ham_backend_dma::DmaBackend;
use ham_backend_veo::{ProtocolConfig, VeoBackend};
use ham_offload::Offload;
use std::sync::Arc;
use veos_sim::{AuroraMachine, MachineConfig};

fn tiny_machine() -> Arc<AuroraMachine> {
    AuroraMachine::small(
        1,
        MachineConfig {
            hbm_bytes: 2 << 20, // 2 MiB of "HBM"
            vh_bytes: 16 << 20,
            ..Default::default()
        },
    )
}

#[test]
fn device_oom_is_an_error_not_a_crash() {
    let o = Offload::new(DmaBackend::spawn(
        tiny_machine(),
        0,
        &[0],
        ProtocolConfig::default(),
        aurora_workloads::register_all,
    ));
    let t = NodeId(1);
    // The protocol's own buffers already occupy part of the 2 MiB.
    let err = o.allocate::<f64>(t, 1 << 20).unwrap_err();
    assert!(matches!(err, OffloadError::Mem(_)), "{err}");
    // The runtime still works after the failed allocation.
    assert_eq!(o.sync(t, f2f!(whoami)).unwrap(), 1);
    let ok = o.allocate::<f64>(t, 64).unwrap();
    o.free(ok).unwrap();
    o.shutdown();
}

#[test]
fn oversized_messages_rejected_on_both_protocols() {
    let small_cfg = ProtocolConfig {
        msg_bytes: 256,
        ..Default::default()
    };
    let veo = Offload::new(VeoBackend::spawn(
        tiny_machine(),
        0,
        &[0],
        small_cfg,
        aurora_workloads::register_all,
    ));
    let dma = Offload::new(DmaBackend::spawn(
        tiny_machine(),
        0,
        &[0],
        small_cfg,
        aurora_workloads::register_all,
    ));
    for (name, o) in [("veo", &veo), ("dma", &dma)] {
        let err = o.sync(NodeId(1), f2f!(echo, vec![0u8; 4096])).unwrap_err();
        assert!(
            matches!(&err, OffloadError::Backend(m) if m.contains("exceeds")),
            "{name}: {err}"
        );
        // Small messages still flow afterwards.
        assert_eq!(
            o.sync(NodeId(1), f2f!(echo, vec![7u8; 32])).unwrap(),
            vec![7u8; 32],
            "{name}"
        );
    }
    veo.shutdown();
    dma.shutdown();
}

#[test]
fn oversized_results_become_error_frames_not_hangs() {
    // Regression: a request that fits the slot can produce a result that
    // does not (results carry ~9 bytes of framing on top of the output).
    // The target must answer with an error frame instead of dying.
    let small_cfg = ProtocolConfig {
        msg_bytes: 256,
        ..Default::default()
    };
    for (name, o) in [
        (
            "veo",
            Offload::new(VeoBackend::spawn(
                tiny_machine(),
                0,
                &[0],
                small_cfg,
                aurora_workloads::register_all,
            )),
        ),
        (
            "dma",
            Offload::new(DmaBackend::spawn(
                tiny_machine(),
                0,
                &[0],
                small_cfg,
                aurora_workloads::register_all,
            )),
        ),
    ] {
        // Request: 8 + 248 = 256 bytes (fits exactly). Result frame:
        // 1 + 8 + 248 = 257 bytes (does not fit).
        let blob = vec![9u8; 248];
        let err = o.sync(NodeId(1), f2f!(echo, blob)).unwrap_err();
        assert!(
            matches!(&err, OffloadError::Backend(m) if m.contains("exceeds")),
            "{name}: {err}"
        );
        // The target loop survived and keeps serving.
        assert_eq!(o.sync(NodeId(1), f2f!(whoami)).unwrap(), 1, "{name}");
        o.shutdown();
    }
}

#[test]
fn double_free_is_rejected_everywhere() {
    for o in [
        veo_offload(1, aurora_workloads::register_all),
        dma_offload(1, aurora_workloads::register_all),
        tcp_offload(1, aurora_workloads::register_all),
    ] {
        let b = o.allocate::<u64>(NodeId(1), 8).unwrap();
        o.free(b).unwrap();
        assert!(matches!(o.free(b), Err(OffloadError::Mem(_))));
        o.shutdown();
    }
}

#[test]
fn out_of_bounds_put_is_rejected_everywhere() {
    for o in [
        veo_offload(1, aurora_workloads::register_all),
        dma_offload(1, aurora_workloads::register_all),
        tcp_offload(1, aurora_workloads::register_all),
    ] {
        let b = o.allocate::<f64>(NodeId(1), 4).unwrap();
        // More elements than the buffer: caught at the API layer.
        assert!(o.put(&[0.0; 8], b).is_err());
        // Within bounds still works.
        o.put(&[1.0; 4], b).unwrap();
        o.shutdown();
    }
}

#[test]
fn kernel_panics_do_not_poison_other_backends() {
    // A kernel that errors internally (reads beyond its buffer) returns
    // an error frame; the target loop keeps serving.
    ham::ham_kernel! {
        pub fn reads_too_far(ctx, addr: u64) -> f64 {
            match ctx.mem.read_f64s(addr, 1_000_000_000) {
                Ok(v) => v.iter().sum(),
                Err(_) => f64::NAN, // graceful: report NaN
            }
        }
    }
    let o = Offload::new(DmaBackend::spawn(
        tiny_machine(),
        0,
        &[0],
        ProtocolConfig::default(),
        |b| {
            b.register::<reads_too_far>();
            aurora_workloads::register_all(b);
        },
    ));
    let r = o.sync(NodeId(1), f2f!(reads_too_far, 0)).unwrap();
    assert!(r.is_nan());
    // The loop survived; normal traffic continues.
    assert_eq!(o.sync(NodeId(1), f2f!(whoami)).unwrap(), 1);
    o.shutdown();
}

#[test]
fn a_panicking_kernel_errors_the_future_instead_of_hanging() {
    // A kernel that panics kills the VE worker thread; pending and
    // subsequent operations must turn into errors, not infinite spins.
    ham::ham_kernel! {
        pub fn kernel_panics(_ctx) -> u64 {
            panic!("deliberate kernel crash");
        }
    }
    let o = Offload::new(DmaBackend::spawn(
        tiny_machine(),
        0,
        &[0],
        ProtocolConfig::default(),
        |b| {
            b.register::<kernel_panics>();
            aurora_workloads::register_all(b);
        },
    ));
    let err = o.sync(NodeId(1), f2f!(kernel_panics)).unwrap_err();
    assert!(matches!(err, OffloadError::TargetLost(NodeId(1))), "{err}");
    // The dead target's channel is evicted: posting to it also errors
    // promptly with the latched eviction error, and nothing leaks.
    let err = o.sync(NodeId(1), f2f!(whoami)).unwrap_err();
    assert!(matches!(err, OffloadError::TargetLost(NodeId(1))), "{err}");
    assert_eq!(o.in_flight(NodeId(1)).unwrap(), 0, "leaked pending entry");
    o.shutdown();
}

#[test]
fn tcp_peer_disconnect_mid_offload_is_a_clean_error() {
    // Cut a TCP peer's sockets with offloads in flight: every affected
    // future must settle with a clean `OffloadError` (no hang, no
    // panic), and the same `Offload` handle must keep working for the
    // surviving target.
    let o = tcp_offload(2, aurora_workloads::register_all);
    let dead = NodeId(1);
    let alive = NodeId(2);
    let doomed: Vec<_> = (0..20)
        .map(|_| o.async_(dead, f2f!(whoami)).unwrap())
        .collect();
    let fine: Vec<_> = (0..20)
        .map(|_| o.async_(alive, f2f!(whoami)).unwrap())
        .collect();
    o.kill_target(dead).unwrap();
    // In-flight offloads on the dead peer either completed before the
    // disconnect or fail with TargetLost — nothing hangs.
    for r in o.wait_all(doomed) {
        match r {
            Ok(n) => assert_eq!(n, 1),
            Err(e) => assert!(matches!(e, OffloadError::TargetLost(NodeId(1))), "{e}"),
        }
    }
    // The survivor is untouched; the handle stays usable.
    for r in o.wait_all(fine) {
        assert_eq!(r.unwrap(), 2);
    }
    assert_eq!(o.sync(alive, f2f!(whoami)).unwrap(), 2);
    // The reader thread latches the eviction as soon as it sees EOF;
    // wait for it (bounded) so the fail-fast assertions are race-free.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while o.backend().channel(dead).unwrap().eviction().is_none() {
        assert!(
            std::time::Instant::now() < deadline,
            "eviction never latched"
        );
        std::thread::yield_now();
    }
    // The dead peer's channel is evicted: posts fail fast, nothing
    // leaks in its pending table.
    let err = o.sync(dead, f2f!(whoami)).unwrap_err();
    assert!(matches!(err, OffloadError::TargetLost(NodeId(1))), "{err}");
    assert_eq!(o.in_flight(dead).unwrap(), 0, "leaked pending entry");
    o.shutdown();
}

#[test]
fn shm_segments_survive_no_unwind() {
    // Regression: a panic between spawn and shutdown used to leak the
    // SysV segment (and its key) forever. The RAII guard must IPC_RMID
    // on unwind, and the VE-side detach (after ham_main exits) must let
    // the segment actually disappear.
    let m = tiny_machine();
    let shm = Arc::clone(m.shm());
    let before = shm.segment_count();
    let result = std::panic::catch_unwind(|| {
        let o = Offload::new(DmaBackend::spawn(
            Arc::clone(&m),
            0,
            &[0],
            ProtocolConfig::default(),
            aurora_workloads::register_all,
        ));
        o.sync(NodeId(1), f2f!(whoami)).unwrap();
        panic!("simulated application crash before shutdown");
    });
    assert!(result.is_err(), "the panic must propagate");
    assert_eq!(
        shm.segment_count(),
        before,
        "shm segment leaked across unwind"
    );
}

#[test]
fn shm_keys_are_reclaimed_across_backend_generations() {
    // Spawning and tearing down backends repeatedly must reuse keys from
    // the pool instead of marching through the key space.
    let m = tiny_machine();
    let shm = Arc::clone(m.shm());
    let mut keys = std::collections::HashSet::new();
    for _ in 0..5 {
        let backend = DmaBackend::spawn(
            Arc::clone(&m),
            0,
            &[0],
            ProtocolConfig::default(),
            aurora_workloads::register_all,
        );
        keys.insert(backend.shm_key(NodeId(1)).unwrap());
        let o = Offload::new(backend);
        o.sync(NodeId(1), f2f!(whoami)).unwrap();
        o.shutdown();
    }
    // Exact reuse is covered by the pool's unit test; here we only
    // require that five generations do not burn five fresh keys (other
    // tests share the process-global pool concurrently).
    assert!(keys.len() < 5, "keys not reclaimed: {keys:?}");
    assert_eq!(shm.segment_count(), 0);
}

#[test]
fn concurrent_host_threads_share_one_offload_handle() {
    // Offload is Clone + Send; several host threads posting to the same
    // target must not corrupt slot bookkeeping.
    let o = dma_offload(1, aurora_workloads::register_all);
    std::thread::scope(|s| {
        for t in 0..4 {
            let o = o.clone();
            s.spawn(move || {
                for i in 0..25u64 {
                    let blob = vec![(t * 25 + i) as u8; 100];
                    let r = o.sync(NodeId(1), f2f!(echo, blob.clone())).unwrap();
                    assert_eq!(r, blob);
                }
            });
        }
    });
    o.shutdown();
}

#[test]
fn concurrent_host_threads_on_tcp_backend() {
    let o = tcp_offload(1, aurora_workloads::register_all);
    std::thread::scope(|s| {
        for t in 0..4 {
            let o = o.clone();
            s.spawn(move || {
                for i in 0..10u64 {
                    let blob = vec![(t * 10 + i) as u8; 64];
                    let r = o.sync(NodeId(1), f2f!(echo, blob.clone())).unwrap();
                    assert_eq!(r, blob);
                }
            });
        }
    });
    o.shutdown();
}
