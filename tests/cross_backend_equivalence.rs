//! The paper's portability claim (§V: existing applications "worked as
//! expected without changing the application code"): the same workload
//! code produces bit-identical results on the reference backend and both
//! Aurora protocol backends.

use aurora_workloads::generators::{random_matrix, random_vector};
use aurora_workloads::kernels::{dgemm, inner_product, jacobi_step, monte_carlo_pi};
use ham::f2f;
use ham_aurora_repro::{dma_offload, local_offload, tcp_offload, veo_offload, NodeId, Offload};

fn backends() -> Vec<(&'static str, Offload)> {
    vec![
        ("local", local_offload(1, aurora_workloads::register_all)),
        ("tcp", tcp_offload(1, aurora_workloads::register_all)),
        ("veo", veo_offload(1, aurora_workloads::register_all)),
        ("dma", dma_offload(1, aurora_workloads::register_all)),
    ]
}

#[test]
fn inner_product_is_bit_identical_everywhere() {
    let xs = random_vector(7, 512);
    let ys = random_vector(8, 512);
    let mut results = Vec::new();
    for (name, o) in backends() {
        let t = NodeId(1);
        let a = o.allocate::<f64>(t, 512).unwrap();
        let b = o.allocate::<f64>(t, 512).unwrap();
        o.put(&xs, a).unwrap();
        o.put(&ys, b).unwrap();
        let r = o
            .sync(t, f2f!(inner_product, a.addr(), b.addr(), 512))
            .unwrap();
        results.push((name, r.to_bits()));
        o.shutdown();
    }
    assert!(results.windows(2).all(|w| w[0].1 == w[1].1), "{results:?}");
}

#[test]
fn dgemm_is_bit_identical_everywhere() {
    let a = random_matrix(1, 16, 12);
    let b = random_matrix(2, 12, 8);
    let mut outputs: Vec<(&str, Vec<u64>)> = Vec::new();
    for (name, o) in backends() {
        let t = NodeId(1);
        let da = o.allocate::<f64>(t, (16 * 12) as u64).unwrap();
        let db = o.allocate::<f64>(t, (12 * 8) as u64).unwrap();
        let dc = o.allocate::<f64>(t, (16 * 8) as u64).unwrap();
        o.put(&a, da).unwrap();
        o.put(&b, db).unwrap();
        o.sync(t, f2f!(dgemm, da.addr(), db.addr(), dc.addr(), 16, 12, 8))
            .unwrap();
        let mut c = vec![0.0f64; 16 * 8];
        o.get(dc, &mut c).unwrap();
        outputs.push((name, c.iter().map(|v| v.to_bits()).collect()));
        o.shutdown();
    }
    assert!(outputs.windows(2).all(|w| w[0].1 == w[1].1));
}

#[test]
fn stateless_kernels_agree() {
    let mut results = Vec::new();
    for (name, o) in backends() {
        let r = o.sync(NodeId(1), f2f!(monte_carlo_pi, 42, 5_000)).unwrap();
        results.push((name, r.to_bits()));
        o.shutdown();
    }
    assert!(results.windows(2).all(|w| w[0].1 == w[1].1), "{results:?}");
}

/// `wait_all` and a `wait_any` drain loop must deliver the same results
/// as serial `get()`s — on every backend, bit for bit.
#[test]
fn wait_any_and_wait_all_agree_everywhere() {
    let seeds: Vec<u64> = (0..8).collect();
    let mut per_backend: Vec<(&str, Vec<u64>)> = Vec::new();
    for (name, o) in backends() {
        let t = NodeId(1);
        // Baseline: serial sync.
        let serial: Vec<u64> = seeds
            .iter()
            .map(|&s| o.sync(t, f2f!(monte_carlo_pi, s, 2_000)).unwrap().to_bits())
            .collect();
        // wait_all: in submission order.
        let futures: Vec<_> = seeds
            .iter()
            .map(|&s| o.async_(t, f2f!(monte_carlo_pi, s, 2_000)).unwrap())
            .collect();
        let gathered: Vec<u64> = o
            .wait_all(futures)
            .into_iter()
            .map(|r| r.unwrap().to_bits())
            .collect();
        assert_eq!(gathered, serial, "{name}: wait_all vs serial");
        // wait_any: completion order; parallel vec tags each future
        // with its submission index.
        let mut ids: Vec<usize> = (0..seeds.len()).collect();
        let mut futs: Vec<_> = seeds
            .iter()
            .map(|&s| o.async_(t, f2f!(monte_carlo_pi, s, 2_000)).unwrap())
            .collect();
        let mut drained = vec![0u64; seeds.len()];
        while let Some(i) = o.wait_any(&mut futs) {
            let idx = ids.swap_remove(i);
            drained[idx] = futs.swap_remove(i).get().unwrap().to_bits();
        }
        assert!(futs.is_empty(), "{name}: wait_any left futures behind");
        assert_eq!(drained, serial, "{name}: wait_any vs serial");
        per_backend.push((name, serial));
        o.shutdown();
    }
    assert!(
        per_backend.windows(2).all(|w| w[0].1 == w[1].1),
        "{per_backend:?}"
    );
}

/// An all-zero [`FaultPlan`] is observationally inert: threading the
/// fault hooks through every transport (with a recovery policy armed on
/// the Aurora backends) must leave results bit-identical to the
/// fault-free constructors. This pins the zero-cost claim of the
/// injection layer: the hooks themselves change nothing.
#[test]
fn zero_fault_plan_keeps_backends_bit_identical() {
    use ham_aurora_repro::{
        dma_offload_with_faults, tcp_offload_with_faults, veo_offload_with_faults, FaultPlan,
        RecoveryPolicy,
    };
    let xs = random_vector(11, 256);
    let ys = random_vector(12, 256);
    let run = |o: Offload| {
        let t = NodeId(1);
        let a = o.allocate::<f64>(t, 256).unwrap();
        let b = o.allocate::<f64>(t, 256).unwrap();
        o.put(&xs, a).unwrap();
        o.put(&ys, b).unwrap();
        let dot = o
            .sync(t, f2f!(inner_product, a.addr(), b.addr(), 256))
            .unwrap()
            .to_bits();
        let pi = o.sync(t, f2f!(monte_carlo_pi, 9, 3_000)).unwrap().to_bits();
        o.shutdown();
        (dot, pi)
    };
    let reg = aurora_workloads::register_all;
    let policy = Some(RecoveryPolicy::default());
    let results: Vec<(&str, (u64, u64))> = vec![
        ("veo", run(veo_offload(1, reg))),
        (
            "veo+zero-plan",
            run(veo_offload_with_faults(1, FaultPlan::none(), policy, reg)),
        ),
        ("dma", run(dma_offload(1, reg))),
        (
            "dma+zero-plan",
            run(dma_offload_with_faults(1, FaultPlan::none(), policy, reg)),
        ),
        ("tcp", run(tcp_offload(1, reg))),
        (
            "tcp+zero-plan",
            run(tcp_offload_with_faults(1, FaultPlan::none(), reg)),
        ),
    ];
    assert!(results.windows(2).all(|w| w[0].1 == w[1].1), "{results:?}");
}

/// Batching is a wire-level optimisation only: a pipelined workload run
/// with message coalescing enabled must produce bit-identical results to
/// the batching-off constructors, on every backend.
#[test]
fn batching_on_keeps_backends_bit_identical() {
    use ham_aurora_repro::{
        dma_offload_batched, local_offload_batched, tcp_offload_batched, veo_offload_batched,
        BatchConfig,
    };
    let reg = aurora_workloads::register_all;
    let seeds: Vec<u64> = (0..24).collect();
    let run = |o: Offload| {
        let t = NodeId(1);
        let futures: Vec<_> = seeds
            .iter()
            .map(|&s| o.async_(t, f2f!(monte_carlo_pi, s, 2_000)).unwrap())
            .collect();
        let bits: Vec<u64> = o
            .wait_all(futures)
            .into_iter()
            .map(|r| r.unwrap().to_bits())
            .collect();
        o.shutdown();
        bits
    };
    let batch = BatchConfig::up_to(8);
    let results: Vec<(&str, Vec<u64>)> = vec![
        ("local", run(local_offload(1, reg))),
        ("local+batch", run(local_offload_batched(1, batch, reg))),
        ("tcp", run(tcp_offload(1, reg))),
        ("tcp+batch", run(tcp_offload_batched(1, batch, reg))),
        ("veo", run(veo_offload(1, reg))),
        ("veo+batch", run(veo_offload_batched(1, batch, reg))),
        ("dma", run(dma_offload(1, reg))),
        ("dma+batch", run(dma_offload_batched(1, batch, reg))),
    ];
    assert!(results.windows(2).all(|w| w[0].1 == w[1].1), "{results:?}");
}

#[test]
fn jacobi_iteration_converges_on_every_backend() {
    let (nx, ny) = (16u64, 16u64);
    let mut grid = vec![0.0f64; (nx * ny) as usize];
    for i in 0..nx as usize {
        for j in 0..ny as usize {
            if i == 0 || j == 0 || i == nx as usize - 1 || j == ny as usize - 1 {
                grid[i * ny as usize + j] = 100.0;
            }
        }
    }
    for (name, o) in backends() {
        let t = NodeId(1);
        let a = o.allocate::<f64>(t, nx * ny).unwrap();
        let b = o.allocate::<f64>(t, nx * ny).unwrap();
        o.put(&grid, a).unwrap();
        let (mut src, mut dst) = (a, b);
        let mut residual = f64::INFINITY;
        for _ in 0..500 {
            residual = o
                .sync(t, f2f!(jacobi_step, src.addr(), dst.addr(), nx, ny))
                .unwrap();
            core::mem::swap(&mut src, &mut dst);
        }
        assert!(residual < 1e-3, "{name}: residual {residual}");
        // Interior approaches the boundary value.
        let mut out = vec![0.0f64; (nx * ny) as usize];
        o.get(src, &mut out).unwrap();
        let center = out[(nx / 2 * ny + ny / 2) as usize];
        assert!((center - 100.0).abs() < 1.0, "{name}: center {center}");
        o.shutdown();
    }
}
