//! The paper's portability claim (§V: existing applications "worked as
//! expected without changing the application code"): the same workload
//! code produces bit-identical results on the reference backend and both
//! Aurora protocol backends.

use aurora_workloads::generators::{random_matrix, random_vector};
use aurora_workloads::kernels::{dgemm, inner_product, jacobi_step, monte_carlo_pi};
use ham::f2f;
use ham_aurora_repro::{dma_offload, local_offload, tcp_offload, veo_offload, NodeId, Offload};

fn backends() -> Vec<(&'static str, Offload)> {
    vec![
        ("local", local_offload(1, aurora_workloads::register_all)),
        ("tcp", tcp_offload(1, aurora_workloads::register_all)),
        ("veo", veo_offload(1, aurora_workloads::register_all)),
        ("dma", dma_offload(1, aurora_workloads::register_all)),
    ]
}

#[test]
fn inner_product_is_bit_identical_everywhere() {
    let xs = random_vector(7, 512);
    let ys = random_vector(8, 512);
    let mut results = Vec::new();
    for (name, o) in backends() {
        let t = NodeId(1);
        let a = o.allocate::<f64>(t, 512).unwrap();
        let b = o.allocate::<f64>(t, 512).unwrap();
        o.put(&xs, a).unwrap();
        o.put(&ys, b).unwrap();
        let r = o
            .sync(t, f2f!(inner_product, a.addr(), b.addr(), 512))
            .unwrap();
        results.push((name, r.to_bits()));
        o.shutdown();
    }
    assert!(results.windows(2).all(|w| w[0].1 == w[1].1), "{results:?}");
}

#[test]
fn dgemm_is_bit_identical_everywhere() {
    let a = random_matrix(1, 16, 12);
    let b = random_matrix(2, 12, 8);
    let mut outputs: Vec<(&str, Vec<u64>)> = Vec::new();
    for (name, o) in backends() {
        let t = NodeId(1);
        let da = o.allocate::<f64>(t, (16 * 12) as u64).unwrap();
        let db = o.allocate::<f64>(t, (12 * 8) as u64).unwrap();
        let dc = o.allocate::<f64>(t, (16 * 8) as u64).unwrap();
        o.put(&a, da).unwrap();
        o.put(&b, db).unwrap();
        o.sync(t, f2f!(dgemm, da.addr(), db.addr(), dc.addr(), 16, 12, 8))
            .unwrap();
        let mut c = vec![0.0f64; 16 * 8];
        o.get(dc, &mut c).unwrap();
        outputs.push((name, c.iter().map(|v| v.to_bits()).collect()));
        o.shutdown();
    }
    assert!(outputs.windows(2).all(|w| w[0].1 == w[1].1));
}

#[test]
fn stateless_kernels_agree() {
    let mut results = Vec::new();
    for (name, o) in backends() {
        let r = o.sync(NodeId(1), f2f!(monte_carlo_pi, 42, 5_000)).unwrap();
        results.push((name, r.to_bits()));
        o.shutdown();
    }
    assert!(results.windows(2).all(|w| w[0].1 == w[1].1), "{results:?}");
}

#[test]
fn jacobi_iteration_converges_on_every_backend() {
    let (nx, ny) = (16u64, 16u64);
    let mut grid = vec![0.0f64; (nx * ny) as usize];
    for i in 0..nx as usize {
        for j in 0..ny as usize {
            if i == 0 || j == 0 || i == nx as usize - 1 || j == ny as usize - 1 {
                grid[i * ny as usize + j] = 100.0;
            }
        }
    }
    for (name, o) in backends() {
        let t = NodeId(1);
        let a = o.allocate::<f64>(t, nx * ny).unwrap();
        let b = o.allocate::<f64>(t, nx * ny).unwrap();
        o.put(&grid, a).unwrap();
        let (mut src, mut dst) = (a, b);
        let mut residual = f64::INFINITY;
        for _ in 0..500 {
            residual = o
                .sync(t, f2f!(jacobi_step, src.addr(), dst.addr(), nx, ny))
                .unwrap();
            core::mem::swap(&mut src, &mut dst);
        }
        assert!(residual < 1e-3, "{name}: residual {residual}");
        // Interior approaches the boundary value.
        let mut out = vec![0.0f64; (nx * ny) as usize];
        o.get(src, &mut out).unwrap();
        let center = out[(nx / 2 * ny + ny / 2) as usize];
        assert!((center - 100.0).abs() < 1.0, "{name}: center {center}");
        o.shutdown();
    }
}
